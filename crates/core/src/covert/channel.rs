//! End-to-end covert transmission and measurement (Fig. 9 / Fig. 10),
//! for both channel families: Prime+Probe over a shared L2 set
//! ([`transmit`]) and NVLink-link congestion over the timed fabric
//! ([`transmit_link`]).

use super::agents::{SpyProbeAgent, SpyTrace, TrojanAgent};
use super::link_agents::{LinkSpyAgent, LinkTrojanAgent};
use super::protocol::{
    decode_trace, decode_trace_with_boundary, robust_boundary, stripe_bits, unstripe_bits,
    ChannelParams, ProbeSample,
};
use crate::eviction::EvictionSet;
use crate::thresholds::Thresholds;
use gpubox_sim::{
    Engine, MultiGpuSystem, ProcessId, SchedulerKind, SimError, SimResult, VirtAddr,
};

/// One aligned (trojan, spy) eviction-set pair (from
/// [`crate::alignment::paired_sets`]).
#[derive(Debug, Clone)]
pub struct SetPair {
    /// The trojan's eviction set for the physical set.
    pub trojan: EvictionSet,
    /// The spy's eviction set for the same physical set.
    pub spy: EvictionSet,
}

/// Outcome of one covert transmission.
#[derive(Debug, Clone)]
pub struct ChannelReport {
    /// Bits handed to the transmitter (payload only, pre-striping).
    pub sent: Vec<u8>,
    /// Bits recovered by the receiver.
    pub received: Vec<u8>,
    /// Hamming distance between sent and received.
    pub bit_errors: usize,
    /// `bit_errors / sent.len()`.
    pub error_rate: f64,
    /// Cycles from first to last activity.
    pub duration_cycles: u64,
    /// Payload bandwidth in bytes per second at the configured core clock.
    pub bandwidth_bytes_per_sec: f64,
    /// Raw per-set spy traces (set index → probe samples), e.g. for the
    /// Fig. 10 message trace.
    pub traces: Vec<Vec<ProbeSample>>,
}

/// Transmits `payload` bits from `trojan_pid` to `spy_pid` over the given
/// aligned set pairs (bits striped round-robin across pairs) and decodes
/// the spy's observations.
///
/// # Errors
///
/// Propagates simulator errors from either side.
pub fn transmit(
    sys: &mut MultiGpuSystem,
    trojan_pid: ProcessId,
    spy_pid: ProcessId,
    pairs: &[SetPair],
    payload: &[u8],
    params: &ChannelParams,
    thresholds: Thresholds,
) -> SimResult<ChannelReport> {
    assert!(!pairs.is_empty(), "need at least one aligned set pair");
    let k = pairs.len();
    let stripes = stripe_bits(payload, k);

    // Frame length decides how long the spy must listen.
    let max_frame = stripes.iter().map(Vec::len).max().unwrap_or(0) + params.preamble_bits;
    let listen = (max_frame as u64 + 4) * params.slot_cycles;

    let mut eng = Engine::new(sys);
    let mut traces: Vec<SpyTrace> = Vec::with_capacity(k);
    for (i, pair) in pairs.iter().enumerate() {
        let frame = params.frame(&stripes[i]);
        let trojan = TrojanAgent::new(trojan_pid, &pair.trojan, frame, params);
        let spy = SpyProbeAgent::new(spy_pid, &pair.spy, thresholds, params, listen);
        traces.push(spy.trace());
        // The spy starts slightly before the trojan (it must be listening
        // when the preamble begins); the stagger also models independent
        // process launches.
        eng.add_agent(Box::new(spy), 0);
        eng.add_agent(Box::new(trojan), params.slot_cycles / 2 + 37 * i as u64);
    }
    let end = eng.run(listen + 16 * params.slot_cycles)?;

    let mut decoded_stripes = Vec::with_capacity(k);
    let mut sample_traces = Vec::with_capacity(k);
    for (i, t) in traces.iter().enumerate() {
        let samples = t.samples();
        let dec = decode_trace(&samples, params, stripes[i].len());
        decoded_stripes.push(dec.payload);
        sample_traces.push(samples);
    }
    let received = unstripe_bits(&decoded_stripes, payload.len());
    let bit_errors = received.iter().zip(payload).filter(|(a, b)| a != b).count();
    let secs = sys.latency_model().cycles_to_seconds(end);
    Ok(ChannelReport {
        sent: payload.to_vec(),
        received,
        bit_errors,
        error_rate: bit_errors as f64 / payload.len().max(1) as f64,
        duration_cycles: end,
        bandwidth_bytes_per_sec: payload.len() as f64 / 8.0 / secs,
        traces: sample_traces,
    })
}

/// Physical layer of one [`transmit_link`] transmission.
#[derive(Debug, Clone)]
pub struct LinkChannel<'a> {
    /// Remote lines of the trojan's buffer; every transfer burst streams
    /// all of them, saturating each link on their route.
    pub trojan_lines: &'a [VirtAddr],
    /// Remote lines of the spy's (disjoint) buffer, whose route must
    /// share at least one link with the trojan's for the channel to
    /// carry signal.
    pub spy_lines: &'a [VirtAddr],
    /// Concurrent trojan transfer streams (thread blocks). More streams
    /// push the shared link deeper into saturation, widening the latency
    /// gap the spy decodes — the sweep's *trojan intensity* axis.
    pub trojan_streams: usize,
}

/// Stages one link-congestion transmission on `sys`: warms both working
/// sets (so in-band samples measure link queueing, not cold misses — the
/// Prime+Probe channel gets the same effect from its discovery phase),
/// builds an engine under `sched`, and wires the spy at start 0 plus
/// `trojan_streams` staggered trojan streams, all sending the framed
/// `payload`. Returns the engine, the spy's trace handle and the spy's
/// listen horizon; the caller may add further agents (the sweep binary
/// adds background tenants) and must run the engine at least to the
/// listen horizon before decoding. [`transmit_link`] is the one-call
/// wrapper.
///
/// # Errors
///
/// Returns [`SimError::FabricDisabled`] when the system was booted
/// without the timed link fabric — the scalar interconnect model has no
/// per-link occupancy for this channel to modulate.
pub fn prepare_link_channel<'a>(
    sys: &'a mut MultiGpuSystem,
    trojan_pid: ProcessId,
    spy_pid: ProcessId,
    channel: &LinkChannel<'_>,
    payload: &[u8],
    params: &ChannelParams,
    sched: SchedulerKind,
) -> SimResult<(Engine<'a>, SpyTrace, u64)> {
    if !sys.fabric_enabled() {
        return Err(SimError::FabricDisabled);
    }
    assert!(channel.trojan_streams >= 1, "need at least one trojan stream");
    assert!(
        !channel.trojan_lines.is_empty() && !channel.spy_lines.is_empty(),
        "need transfer lines on both sides"
    );
    let frame = params.frame(payload);
    let listen = (frame.len() as u64 + 4) * params.slot_cycles;

    let mut scratch = Vec::new();
    let ta = sys.default_agent(trojan_pid);
    sys.access_batch_into(trojan_pid, ta, channel.trojan_lines, 0, &mut scratch)?;
    let sa = sys.default_agent(spy_pid);
    scratch.clear();
    sys.access_batch_into(spy_pid, sa, channel.spy_lines, 0, &mut scratch)?;

    let mut eng = Engine::with_scheduler(sys, sched);
    let spy = LinkSpyAgent::new(spy_pid, channel.spy_lines, params, listen);
    let trace = spy.trace();
    // The spy starts slightly before the trojan (it must be listening
    // when the preamble begins); trojan streams stagger like independent
    // thread-block launches.
    eng.add_agent(Box::new(spy), 0);
    for s in 0..channel.trojan_streams {
        let trojan = LinkTrojanAgent::new(trojan_pid, channel.trojan_lines, frame.clone(), params);
        eng.add_agent(Box::new(trojan), params.slot_cycles / 2 + 37 * s as u64);
    }
    Ok((eng, trace, listen))
}

/// Transmits `payload` bits from `trojan_pid` to `spy_pid` through
/// **link congestion** on the timed fabric: the trojan saturates the
/// links on its route during `1` slots; the spy streams its own buffer
/// and decodes from its own per-probe mean latency (no shared cache
/// set). Framing, phase lock and the adaptive decode boundary are the
/// same protocol machinery as [`transmit`].
///
/// `sched` forces an engine scheduler; [`SchedulerKind::Auto`] is the
/// normal choice, and the sweep binaries assert heap and linear produce
/// bit-identical channels.
///
/// # Errors
///
/// Returns [`SimError::FabricDisabled`] when the system was booted
/// without the timed link fabric. Propagates simulator errors from
/// either side.
pub fn transmit_link(
    sys: &mut MultiGpuSystem,
    trojan_pid: ProcessId,
    spy_pid: ProcessId,
    channel: &LinkChannel<'_>,
    payload: &[u8],
    params: &ChannelParams,
    sched: SchedulerKind,
) -> SimResult<ChannelReport> {
    let (mut eng, trace, listen) =
        prepare_link_channel(sys, trojan_pid, spy_pid, channel, payload, params, sched)?;
    let end = eng.run(listen + 16 * params.slot_cycles)?;
    drop(eng);

    let samples = trace.samples();
    let boundary = robust_boundary(&samples);
    let received = decode_trace_with_boundary(&samples, params, payload.len(), boundary).payload;
    let bit_errors = received.iter().zip(payload).filter(|(a, b)| a != b).count();
    let secs = sys.latency_model().cycles_to_seconds(end);
    Ok(ChannelReport {
        sent: payload.to_vec(),
        received,
        bit_errors,
        error_rate: bit_errors as f64 / payload.len().max(1) as f64,
        duration_cycles: end,
        bandwidth_bytes_per_sec: payload.len() as f64 / 8.0 / secs,
        traces: vec![samples],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::{align_classes, paired_sets, AlignmentConfig};
    use crate::covert::protocol::bits_from_bytes;
    use crate::eviction::{classify_pages, Locality};
    use gpubox_sim::{FabricConfig, GpuId, ProcessCtx, SystemConfig};

    fn channel_fixture(noiseless: bool) -> (MultiGpuSystem, ProcessId, ProcessId, Vec<SetPair>) {
        let cfg = if noiseless {
            SystemConfig::small_test().noiseless()
        } else {
            SystemConfig::small_test()
        };
        let mut sys = MultiGpuSystem::new(cfg);
        let thr = Thresholds::paper_defaults();
        let trojan = sys.create_process(GpuId::new(0));
        let spy = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
        let bytes = 96 * 4096u64;
        let tclasses = {
            let mut ctx = ProcessCtx::new(&mut sys, trojan, 0);
            let b = ctx.malloc_on(GpuId::new(0), bytes).unwrap();
            classify_pages(&mut ctx, b, bytes, 4096, 128, 16, &thr, Locality::Local).unwrap()
        };
        let sclasses = {
            let mut ctx = ProcessCtx::new(&mut sys, spy, 0);
            let b = ctx.malloc_on(GpuId::new(0), bytes).unwrap();
            classify_pages(&mut ctx, b, bytes, 4096, 128, 16, &thr, Locality::Remote).unwrap()
        };
        let matches = align_classes(
            &mut sys,
            trojan,
            &tclasses,
            spy,
            &sclasses,
            16,
            &AlignmentConfig::default(),
        )
        .unwrap();
        let pairs = paired_sets(&tclasses, &sclasses, &matches, 8, 16)
            .into_iter()
            .map(|(t, s)| SetPair { trojan: t, spy: s })
            .collect();
        (sys, trojan, spy, pairs)
    }

    #[test]
    fn single_set_transmission_is_error_free_noiseless() {
        let (mut sys, trojan, spy, pairs) = channel_fixture(true);
        let payload = bits_from_bytes(b"Hi");
        let report = transmit(
            &mut sys,
            trojan,
            spy,
            &pairs[..1],
            &payload,
            &ChannelParams::default(),
            Thresholds::paper_defaults(),
        )
        .unwrap();
        assert_eq!(report.bit_errors, 0, "received {:?}", report.received);
        assert!(report.bandwidth_bytes_per_sec > 0.0);
    }

    #[test]
    fn four_set_transmission_has_low_error_with_noise() {
        let (mut sys, trojan, spy, pairs) = channel_fixture(false);
        let payload = bits_from_bytes(b"The quick brown fox jumps!");
        let report = transmit(
            &mut sys,
            trojan,
            spy,
            &pairs[..4],
            &payload,
            &ChannelParams::default(),
            Thresholds::paper_defaults(),
        )
        .unwrap();
        assert!(
            report.error_rate < 0.08,
            "error rate {} too high ({} errors)",
            report.error_rate,
            report.bit_errors
        );
    }

    #[test]
    fn more_sets_increase_bandwidth() {
        let (mut sys, trojan, spy, pairs) = channel_fixture(true);
        let payload = bits_from_bytes(b"bandwidth scaling test!!");
        let params = ChannelParams::default();
        let thr = Thresholds::paper_defaults();
        let bw1 = transmit(&mut sys, trojan, spy, &pairs[..1], &payload, &params, thr)
            .unwrap()
            .bandwidth_bytes_per_sec;
        let bw4 = transmit(&mut sys, trojan, spy, &pairs[..4], &payload, &params, thr)
            .unwrap()
            .bandwidth_bytes_per_sec;
        assert!(bw4 > bw1 * 2.0, "bw1={bw1} bw4={bw4}");
    }

    /// Trojan and spy processes on GPU1 with disjoint buffers homed on
    /// GPU0: both routes cross the single NVLink link of the two-GPU box.
    fn link_fixture(
        params: &ChannelParams,
    ) -> (MultiGpuSystem, ProcessId, ProcessId, Vec<VirtAddr>, Vec<VirtAddr>) {
        let cfg = SystemConfig::small_test()
            .noiseless()
            .with_fabric(FabricConfig::nvlink_v1());
        let mut sys = MultiGpuSystem::new(cfg);
        let trojan = sys.create_process(GpuId::new(1));
        let spy = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(trojan, GpuId::new(0)).unwrap();
        sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
        let tb = sys.malloc_on(trojan, GpuId::new(0), 32 * 4096).unwrap();
        let sb = sys.malloc_on(spy, GpuId::new(0), 8 * 4096).unwrap();
        let trojan_lines: Vec<VirtAddr> = (0..32).map(|i| tb.offset(i * 4096)).collect();
        let spy_lines: Vec<VirtAddr> = (0..8).map(|i| sb.offset(i * 4096)).collect();
        let _ = params;
        (sys, trojan, spy, trojan_lines, spy_lines)
    }

    fn link_params() -> ChannelParams {
        ChannelParams {
            spy_gap: 600,
            ..Default::default()
        }
    }

    #[test]
    fn link_channel_decodes_noiseless() {
        let params = link_params();
        let (mut sys, trojan, spy, tl, sl) = link_fixture(&params);
        let payload = bits_from_bytes(b"no shared set");
        let report = transmit_link(
            &mut sys,
            trojan,
            spy,
            &LinkChannel {
                trojan_lines: &tl,
                spy_lines: &sl,
                trojan_streams: 2,
            },
            &payload,
            &params,
            SchedulerKind::Auto,
        )
        .unwrap();
        assert_eq!(report.bit_errors, 0, "received {:?}", report.received);
        assert!(report.bandwidth_bytes_per_sec > 0.0);
        // The spy never observed cache state: every sample reports zero
        // misses; decoding ran purely on transfer latency.
        assert!(report.traces[0].iter().all(|s| s.misses == 0));
    }

    #[test]
    fn link_channel_requires_the_fabric() {
        let params = link_params();
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let trojan = sys.create_process(GpuId::new(1));
        let spy = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(trojan, GpuId::new(0)).unwrap();
        let tb = sys.malloc_on(trojan, GpuId::new(0), 4096).unwrap();
        let err = transmit_link(
            &mut sys,
            trojan,
            spy,
            &LinkChannel {
                trojan_lines: &[tb],
                spy_lines: &[tb],
                trojan_streams: 1,
            },
            &[1, 0, 1],
            &params,
            SchedulerKind::Auto,
        )
        .unwrap_err();
        assert_eq!(err, SimError::FabricDisabled);
    }

    #[test]
    fn link_channel_is_scheduler_invariant() {
        let params = link_params();
        let payload = bits_from_bytes(b"sched");
        let mut runs = Vec::new();
        for sched in [SchedulerKind::Linear, SchedulerKind::Heap] {
            let (mut sys, trojan, spy, tl, sl) = link_fixture(&params);
            let report = transmit_link(
                &mut sys,
                trojan,
                spy,
                &LinkChannel {
                    trojan_lines: &tl,
                    spy_lines: &sl,
                    trojan_streams: 3,
                },
                &payload,
                &params,
                sched,
            )
            .unwrap();
            runs.push((report.received, report.duration_cycles, report.traces));
        }
        assert_eq!(runs[0], runs[1], "heap and linear channels must be bit-identical");
    }

    #[test]
    fn trace_levels_match_fig10() {
        // '0' slots show ~630-cycle probes, '1' slots ~950 (paper Fig. 10).
        let (mut sys, trojan, spy, pairs) = channel_fixture(true);
        let payload = vec![1, 1, 1, 1, 0, 0, 0, 0, 1, 1, 1, 1];
        let report = transmit(
            &mut sys,
            trojan,
            spy,
            &pairs[..1],
            &payload,
            &ChannelParams::default(),
            Thresholds::paper_defaults(),
        )
        .unwrap();
        assert_eq!(report.bit_errors, 0);
        let trace = &report.traces[0];
        let ones: Vec<u32> = trace
            .iter()
            .filter(|s| s.misses > 8)
            .map(|s| s.mean_latency)
            .collect();
        let zeros: Vec<u32> = trace
            .iter()
            .filter(|s| s.misses <= 8)
            .map(|s| s.mean_latency)
            .collect();
        assert!(!ones.is_empty() && !zeros.is_empty());
        let avg = |v: &[u32]| v.iter().map(|&x| f64::from(x)).sum::<f64>() / v.len() as f64;
        assert!(
            (avg(&ones) - 950.0).abs() < 120.0,
            "one-level {}",
            avg(&ones)
        );
        assert!(
            (avg(&zeros) - 630.0).abs() < 120.0,
            "zero-level {}",
            avg(&zeros)
        );
    }
}
