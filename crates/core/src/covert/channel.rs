//! End-to-end covert transmission and measurement (Fig. 9 / Fig. 10),
//! for both channel families: Prime+Probe over a shared L2 set
//! ([`transmit`]) and NVLink-link congestion over the timed fabric
//! ([`transmit_link`]). Both are thin wrappers over the
//! transport-agnostic [`transmit_over`] pipeline — kept bit-identical
//! to their pre-pipeline (PR 3) implementations, asserted by the golden
//! fingerprints in `tests/channel_fingerprints.rs`.

use super::medium::{transmit_over, ChannelMedium, L2SetMedium, LinkCongestionMedium};
use super::pipeline::{Coding, Pipeline};
use super::protocol::{ChannelParams, ProbeSample};
use crate::eviction::EvictionSet;
use crate::thresholds::Thresholds;
use gpubox_sim::{Engine, MultiGpuSystem, ProcessId, SchedulerKind, SimResult, VirtAddr};

/// One aligned (trojan, spy) eviction-set pair (from
/// [`crate::alignment::paired_sets`]).
#[derive(Debug, Clone)]
pub struct SetPair {
    /// The trojan's eviction set for the physical set.
    pub trojan: EvictionSet,
    /// The spy's eviction set for the same physical set.
    pub spy: EvictionSet,
}

/// Outcome of one covert transmission.
#[derive(Debug, Clone)]
pub struct ChannelReport {
    /// Bits handed to the transmitter (payload only — before the
    /// pipeline's coding stage, before striping).
    pub sent: Vec<u8>,
    /// Bits recovered by the receiver (after decoding and the coding
    /// stage's correction).
    pub received: Vec<u8>,
    /// Hamming distance between sent and received.
    pub bit_errors: usize,
    /// `bit_errors / sent.len()`.
    pub error_rate: f64,
    /// Cycles from first to last activity (the engine's end-of-run
    /// clock, including the post-listen grace period).
    pub duration_cycles: u64,
    /// The spy's listen horizon — the true transmission window, and the
    /// span bandwidth is measured over.
    pub listen_cycles: u64,
    /// Payload bandwidth in bytes per second at the configured core
    /// clock, measured over the **listen span** for every medium. (The
    /// L2 channel historically divided by the engine's end-of-run clock
    /// instead, deflating Fig. 9-style numbers by the grace slots; the
    /// decoded bits are unaffected.)
    pub bandwidth_bytes_per_sec: f64,
    /// Codeword corrections applied by the pipeline's coding stage (0
    /// without coding).
    pub ecc_corrections: usize,
    /// Median spy-observed per-slot mean latency, as a log2-bucket
    /// floor (see [`gpubox_sim::telemetry::LogHistogram`] — exact to
    /// within one power of two), pooled across lanes.
    pub slot_latency_p50: u64,
    /// 95th percentile of the spy-observed per-slot mean latencies
    /// (log2-bucket floor).
    pub slot_latency_p95: u64,
    /// 99th percentile of the spy-observed per-slot mean latencies
    /// (log2-bucket floor).
    pub slot_latency_p99: u64,
    /// Raw per-lane spy traces (lane index → probe samples), e.g. for
    /// the Fig. 10 message trace.
    pub traces: Vec<Vec<ProbeSample>>,
}

/// Transmits `payload` bits from `trojan_pid` to `spy_pid` over the given
/// aligned set pairs (bits striped round-robin across pairs) and decodes
/// the spy's observations.
///
/// Equivalent to [`transmit_over`] with an [`L2SetMedium`] and that
/// medium's default pipeline (2-means boundary, per-sample vote, no
/// coding).
///
/// # Errors
///
/// Propagates simulator errors from either side.
pub fn transmit(
    sys: &mut MultiGpuSystem,
    trojan_pid: ProcessId,
    spy_pid: ProcessId,
    pairs: &[SetPair],
    payload: &[u8],
    params: &ChannelParams,
    thresholds: Thresholds,
) -> SimResult<ChannelReport> {
    assert!(!pairs.is_empty(), "need at least one aligned set pair");
    let medium = L2SetMedium {
        trojan: trojan_pid,
        spy: spy_pid,
        pairs,
        thresholds,
    };
    let pipeline = Pipeline {
        decoder: medium.default_decoder(),
        coding: Coding::None,
    };
    transmit_over(sys, &medium, payload, params, &pipeline, SchedulerKind::Auto)
}

/// Physical layer of one [`transmit_link`] transmission.
#[derive(Debug, Clone)]
pub struct LinkChannel<'a> {
    /// Remote lines of the trojan's buffer; every transfer burst streams
    /// all of them, saturating each link on their route.
    pub trojan_lines: &'a [VirtAddr],
    /// Remote lines of the spy's (disjoint) buffer, whose route must
    /// share at least one link with the trojan's for the channel to
    /// carry signal.
    pub spy_lines: &'a [VirtAddr],
    /// Concurrent trojan transfer streams (thread blocks). More streams
    /// push the shared link deeper into saturation, widening the latency
    /// gap the spy decodes — the sweep's *trojan intensity* axis.
    pub trojan_streams: usize,
}

/// Stages one link-congestion transmission on `sys` through the
/// [`LinkCongestionMedium`]: warms both working sets, builds an engine
/// under `sched`, and wires the spy at start 0 plus
/// `trojan_streams` staggered trojan streams, all sending the framed
/// `payload`. Returns the engine, the spy's trace handle and the spy's
/// listen horizon; the caller may add further agents (the sweep binary
/// adds background tenants) and must run the engine at least to the
/// listen horizon before decoding. [`transmit_link`] is the one-call
/// wrapper.
///
/// # Errors
///
/// Returns [`gpubox_sim::SimError::FabricDisabled`] when the system was
/// booted without the timed link fabric — the scalar interconnect model
/// has no per-link occupancy for this channel to modulate.
pub fn prepare_link_channel<'a>(
    sys: &'a mut MultiGpuSystem,
    trojan_pid: ProcessId,
    spy_pid: ProcessId,
    channel: &LinkChannel<'_>,
    payload: &[u8],
    params: &ChannelParams,
    sched: SchedulerKind,
) -> SimResult<(Engine<'a>, super::agents::SpyTrace, u64)> {
    let medium = LinkCongestionMedium {
        trojan: trojan_pid,
        spy: spy_pid,
        channel: channel.clone(),
    };
    let frame = params.frame(payload);
    let listen = (frame.len() as u64 + 4) * params.slot_cycles;
    medium.prepare(sys)?;
    let mut eng = Engine::with_scheduler(sys, sched);
    let trace = medium.install_lane(&mut eng, 0, &frame, params, listen);
    Ok((eng, trace, listen))
}

/// Transmits `payload` bits from `trojan_pid` to `spy_pid` through
/// **link congestion** on the timed fabric: the trojan saturates the
/// links on its route during `1` slots; the spy streams its own buffer
/// and decodes from its own per-probe mean latency (no shared cache
/// set). Framing, phase lock and decoding are the same pipeline
/// machinery as [`transmit`]; this medium's default pipeline anchors
/// the decision boundary on robust quantiles (the congested level is a
/// heavy tail, not a second tight cluster).
///
/// `sched` forces an engine scheduler; [`SchedulerKind::Auto`] is the
/// normal choice, and the sweep binaries assert heap and linear produce
/// bit-identical channels.
///
/// # Errors
///
/// Returns [`gpubox_sim::SimError::FabricDisabled`] when the system was
/// booted without the timed link fabric. Propagates simulator errors
/// from either side.
pub fn transmit_link(
    sys: &mut MultiGpuSystem,
    trojan_pid: ProcessId,
    spy_pid: ProcessId,
    channel: &LinkChannel<'_>,
    payload: &[u8],
    params: &ChannelParams,
    sched: SchedulerKind,
) -> SimResult<ChannelReport> {
    let medium = LinkCongestionMedium {
        trojan: trojan_pid,
        spy: spy_pid,
        channel: channel.clone(),
    };
    let pipeline = Pipeline {
        decoder: medium.default_decoder(),
        coding: Coding::None,
    };
    transmit_over(sys, &medium, payload, params, &pipeline, sched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::{align_classes, paired_sets, AlignmentConfig};
    use crate::covert::pipeline::{BoundaryPolicy, Decoder};
    use crate::covert::protocol::bits_from_bytes;
    use crate::eviction::{classify_pages, Locality, ScanConfig};
    use gpubox_sim::{FabricConfig, GpuId, ProcessCtx, SimError, SystemConfig};

    fn channel_fixture(noiseless: bool) -> (MultiGpuSystem, ProcessId, ProcessId, Vec<SetPair>) {
        let cfg = if noiseless {
            SystemConfig::small_test().noiseless()
        } else {
            SystemConfig::small_test()
        };
        let mut sys = MultiGpuSystem::new(cfg);
        let thr = Thresholds::paper_defaults();
        let trojan = sys.create_process(GpuId::new(0));
        let spy = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
        let bytes = 96 * 4096u64;
        let tclasses = {
            let mut ctx = ProcessCtx::new(&mut sys, trojan, 0);
            let b = ctx.malloc_on(GpuId::new(0), bytes).unwrap();
            classify_pages(&mut ctx, b, bytes, 4096, 128, 16, &thr, Locality::Local, &ScanConfig::classify_default()).unwrap()
        };
        let sclasses = {
            let mut ctx = ProcessCtx::new(&mut sys, spy, 0);
            let b = ctx.malloc_on(GpuId::new(0), bytes).unwrap();
            classify_pages(&mut ctx, b, bytes, 4096, 128, 16, &thr, Locality::Remote, &ScanConfig::classify_default()).unwrap()
        };
        let matches = align_classes(
            &mut sys,
            trojan,
            &tclasses,
            spy,
            &sclasses,
            16,
            &AlignmentConfig::default(),
        )
        .unwrap();
        let pairs = paired_sets(&tclasses, &sclasses, &matches, 8, 16)
            .into_iter()
            .map(|(t, s)| SetPair { trojan: t, spy: s })
            .collect();
        (sys, trojan, spy, pairs)
    }

    #[test]
    fn single_set_transmission_is_error_free_noiseless() {
        let (mut sys, trojan, spy, pairs) = channel_fixture(true);
        let payload = bits_from_bytes(b"Hi");
        let report = transmit(
            &mut sys,
            trojan,
            spy,
            &pairs[..1],
            &payload,
            &ChannelParams::default(),
            Thresholds::paper_defaults(),
        )
        .unwrap();
        assert_eq!(report.bit_errors, 0, "received {:?}", report.received);
        assert!(report.bandwidth_bytes_per_sec > 0.0);
        assert_eq!(report.ecc_corrections, 0, "no coding stage configured");
        assert!(report.listen_cycles <= report.duration_cycles);
    }

    #[test]
    fn four_set_transmission_has_low_error_with_noise() {
        let (mut sys, trojan, spy, pairs) = channel_fixture(false);
        let payload = bits_from_bytes(b"The quick brown fox jumps!");
        let report = transmit(
            &mut sys,
            trojan,
            spy,
            &pairs[..4],
            &payload,
            &ChannelParams::default(),
            Thresholds::paper_defaults(),
        )
        .unwrap();
        assert!(
            report.error_rate < 0.08,
            "error rate {} too high ({} errors)",
            report.error_rate,
            report.bit_errors
        );
    }

    #[test]
    fn more_sets_increase_bandwidth() {
        let (mut sys, trojan, spy, pairs) = channel_fixture(true);
        let payload = bits_from_bytes(b"bandwidth scaling test!!");
        let params = ChannelParams::default();
        let thr = Thresholds::paper_defaults();
        let bw1 = transmit(&mut sys, trojan, spy, &pairs[..1], &payload, &params, thr)
            .unwrap()
            .bandwidth_bytes_per_sec;
        let bw4 = transmit(&mut sys, trojan, spy, &pairs[..4], &payload, &params, thr)
            .unwrap()
            .bandwidth_bytes_per_sec;
        assert!(bw4 > bw1 * 2.0, "bw1={bw1} bw4={bw4}");
    }

    /// Any decoder/coding combination runs on the L2 medium through the
    /// generic pipeline — here the matched filter plus Hamming(7,4).
    #[test]
    fn pipeline_combinations_run_on_the_l2_medium() {
        let (mut sys, trojan, spy, pairs) = channel_fixture(true);
        let payload = bits_from_bytes(b"any stack on any medium");
        let medium = L2SetMedium {
            trojan,
            spy,
            pairs: &pairs[..4],
            thresholds: Thresholds::paper_defaults(),
        };
        let pipeline = Pipeline::matched_filter(BoundaryPolicy::TwoMeans)
            .with_coding(Coding::Hamming74 { interleave_depth: 8 });
        let report = transmit_over(
            &mut sys,
            &medium,
            &payload,
            &ChannelParams::default(),
            &pipeline,
            SchedulerKind::Auto,
        )
        .unwrap();
        assert_eq!(report.bit_errors, 0, "received {:?}", report.received);
        assert_eq!(report.sent, payload, "report carries the data bits, not the code bits");
    }

    /// Trojan and spy processes on GPU1 with disjoint buffers homed on
    /// GPU0: both routes cross the single NVLink link of the two-GPU box.
    fn link_fixture(
        params: &ChannelParams,
    ) -> (MultiGpuSystem, ProcessId, ProcessId, Vec<VirtAddr>, Vec<VirtAddr>) {
        let cfg = SystemConfig::small_test()
            .noiseless()
            .with_fabric(FabricConfig::nvlink_v1());
        let mut sys = MultiGpuSystem::new(cfg);
        let trojan = sys.create_process(GpuId::new(1));
        let spy = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(trojan, GpuId::new(0)).unwrap();
        sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
        let tb = sys.malloc_on(trojan, GpuId::new(0), 32 * 4096).unwrap();
        let sb = sys.malloc_on(spy, GpuId::new(0), 8 * 4096).unwrap();
        let trojan_lines: Vec<VirtAddr> = (0..32).map(|i| tb.offset(i * 4096)).collect();
        let spy_lines: Vec<VirtAddr> = (0..8).map(|i| sb.offset(i * 4096)).collect();
        let _ = params;
        (sys, trojan, spy, trojan_lines, spy_lines)
    }

    fn link_params() -> ChannelParams {
        ChannelParams {
            spy_gap: 600,
            ..Default::default()
        }
    }

    #[test]
    fn link_channel_decodes_noiseless() {
        let params = link_params();
        let (mut sys, trojan, spy, tl, sl) = link_fixture(&params);
        let payload = bits_from_bytes(b"no shared set");
        let report = transmit_link(
            &mut sys,
            trojan,
            spy,
            &LinkChannel {
                trojan_lines: &tl,
                spy_lines: &sl,
                trojan_streams: 2,
            },
            &payload,
            &params,
            SchedulerKind::Auto,
        )
        .unwrap();
        assert_eq!(report.bit_errors, 0, "received {:?}", report.received);
        assert!(report.bandwidth_bytes_per_sec > 0.0);
        // The spy never observed cache state: every sample reports zero
        // misses; decoding ran purely on transfer latency.
        assert!(report.traces[0].iter().all(|s| s.misses == 0));
    }

    /// The matched filter also decodes the link medium through the
    /// generic pipeline — any decoder on any medium.
    #[test]
    fn matched_filter_decodes_the_link_medium() {
        let params = link_params();
        let (mut sys, trojan, spy, tl, sl) = link_fixture(&params);
        let payload = bits_from_bytes(b"soft slots");
        let medium = LinkCongestionMedium {
            trojan,
            spy,
            channel: LinkChannel {
                trojan_lines: &tl,
                spy_lines: &sl,
                trojan_streams: 3,
            },
        };
        let report = transmit_over(
            &mut sys,
            &medium,
            &payload,
            &params,
            &Pipeline::matched_filter(BoundaryPolicy::Quantile),
            SchedulerKind::Auto,
        )
        .unwrap();
        assert_eq!(report.bit_errors, 0, "received {:?}", report.received);
    }

    #[test]
    fn link_channel_requires_the_fabric() {
        let params = link_params();
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let trojan = sys.create_process(GpuId::new(1));
        let spy = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(trojan, GpuId::new(0)).unwrap();
        let tb = sys.malloc_on(trojan, GpuId::new(0), 4096).unwrap();
        let err = transmit_link(
            &mut sys,
            trojan,
            spy,
            &LinkChannel {
                trojan_lines: &[tb],
                spy_lines: &[tb],
                trojan_streams: 1,
            },
            &[1, 0, 1],
            &params,
            SchedulerKind::Auto,
        )
        .unwrap_err();
        assert_eq!(err, SimError::FabricDisabled);
    }

    #[test]
    fn link_channel_is_scheduler_invariant() {
        let params = link_params();
        let payload = bits_from_bytes(b"sched");
        let mut runs = Vec::new();
        for sched in [SchedulerKind::Linear, SchedulerKind::Heap] {
            let (mut sys, trojan, spy, tl, sl) = link_fixture(&params);
            let report = transmit_link(
                &mut sys,
                trojan,
                spy,
                &LinkChannel {
                    trojan_lines: &tl,
                    spy_lines: &sl,
                    trojan_streams: 3,
                },
                &payload,
                &params,
                sched,
            )
            .unwrap();
            runs.push((report.received, report.duration_cycles, report.traces));
        }
        assert_eq!(runs[0], runs[1], "heap and linear channels must be bit-identical");
    }

    #[test]
    fn trace_levels_match_fig10() {
        // '0' slots show ~630-cycle probes, '1' slots ~950 (paper Fig. 10).
        let (mut sys, trojan, spy, pairs) = channel_fixture(true);
        let payload = vec![1, 1, 1, 1, 0, 0, 0, 0, 1, 1, 1, 1];
        let report = transmit(
            &mut sys,
            trojan,
            spy,
            &pairs[..1],
            &payload,
            &ChannelParams::default(),
            Thresholds::paper_defaults(),
        )
        .unwrap();
        assert_eq!(report.bit_errors, 0);
        let trace = &report.traces[0];
        let ones: Vec<u32> = trace
            .iter()
            .filter(|s| s.misses > 8)
            .map(|s| s.mean_latency)
            .collect();
        let zeros: Vec<u32> = trace
            .iter()
            .filter(|s| s.misses <= 8)
            .map(|s| s.mean_latency)
            .collect();
        assert!(!ones.is_empty() && !zeros.is_empty());
        let avg = |v: &[u32]| v.iter().map(|&x| f64::from(x)).sum::<f64>() / v.len() as f64;
        assert!(
            (avg(&ones) - 950.0).abs() < 120.0,
            "one-level {}",
            avg(&ones)
        );
        assert!(
            (avg(&zeros) - 630.0).abs() < 120.0,
            "zero-level {}",
            avg(&zeros)
        );
    }

    /// The per-medium default decoders match what the PR 3 wrappers
    /// hard-wired.
    #[test]
    fn media_defaults_match_their_distribution_shapes() {
        let pairs: Vec<SetPair> = Vec::new();
        let l2 = L2SetMedium {
            trojan: ProcessId(0),
            spy: ProcessId(1),
            pairs: &pairs,
            thresholds: Thresholds::paper_defaults(),
        };
        assert_eq!(l2.default_decoder(), Decoder::Vote(BoundaryPolicy::TwoMeans));
        let link = LinkCongestionMedium {
            trojan: ProcessId(0),
            spy: ProcessId(1),
            channel: LinkChannel {
                trojan_lines: &[],
                spy_lines: &[],
                trojan_streams: 1,
            },
        };
        assert_eq!(link.default_decoder(), Decoder::Vote(BoundaryPolicy::Quantile));
    }
}
