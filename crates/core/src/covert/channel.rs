//! End-to-end covert transmission and measurement (Fig. 9 / Fig. 10).

use super::agents::{SpyProbeAgent, SpyTrace, TrojanAgent};
use super::protocol::{decode_trace, stripe_bits, unstripe_bits, ChannelParams, ProbeSample};
use crate::eviction::EvictionSet;
use crate::thresholds::Thresholds;
use gpubox_sim::{Engine, MultiGpuSystem, ProcessId, SimResult};

/// One aligned (trojan, spy) eviction-set pair (from
/// [`crate::alignment::paired_sets`]).
#[derive(Debug, Clone)]
pub struct SetPair {
    /// The trojan's eviction set for the physical set.
    pub trojan: EvictionSet,
    /// The spy's eviction set for the same physical set.
    pub spy: EvictionSet,
}

/// Outcome of one covert transmission.
#[derive(Debug, Clone)]
pub struct ChannelReport {
    /// Bits handed to the transmitter (payload only, pre-striping).
    pub sent: Vec<u8>,
    /// Bits recovered by the receiver.
    pub received: Vec<u8>,
    /// Hamming distance between sent and received.
    pub bit_errors: usize,
    /// `bit_errors / sent.len()`.
    pub error_rate: f64,
    /// Cycles from first to last activity.
    pub duration_cycles: u64,
    /// Payload bandwidth in bytes per second at the configured core clock.
    pub bandwidth_bytes_per_sec: f64,
    /// Raw per-set spy traces (set index → probe samples), e.g. for the
    /// Fig. 10 message trace.
    pub traces: Vec<Vec<ProbeSample>>,
}

/// Transmits `payload` bits from `trojan_pid` to `spy_pid` over the given
/// aligned set pairs (bits striped round-robin across pairs) and decodes
/// the spy's observations.
///
/// # Errors
///
/// Propagates simulator errors from either side.
pub fn transmit(
    sys: &mut MultiGpuSystem,
    trojan_pid: ProcessId,
    spy_pid: ProcessId,
    pairs: &[SetPair],
    payload: &[u8],
    params: &ChannelParams,
    thresholds: Thresholds,
) -> SimResult<ChannelReport> {
    assert!(!pairs.is_empty(), "need at least one aligned set pair");
    let k = pairs.len();
    let stripes = stripe_bits(payload, k);

    // Frame length decides how long the spy must listen.
    let max_frame = stripes.iter().map(Vec::len).max().unwrap_or(0) + params.preamble_bits;
    let listen = (max_frame as u64 + 4) * params.slot_cycles;

    let mut eng = Engine::new(sys);
    let mut traces: Vec<SpyTrace> = Vec::with_capacity(k);
    for (i, pair) in pairs.iter().enumerate() {
        let frame = params.frame(&stripes[i]);
        let trojan = TrojanAgent::new(trojan_pid, &pair.trojan, frame, params);
        let spy = SpyProbeAgent::new(spy_pid, &pair.spy, thresholds, params, listen);
        traces.push(spy.trace());
        // The spy starts slightly before the trojan (it must be listening
        // when the preamble begins); the stagger also models independent
        // process launches.
        eng.add_agent(Box::new(spy), 0);
        eng.add_agent(Box::new(trojan), params.slot_cycles / 2 + 37 * i as u64);
    }
    let end = eng.run(listen + 16 * params.slot_cycles)?;

    let mut decoded_stripes = Vec::with_capacity(k);
    let mut sample_traces = Vec::with_capacity(k);
    for (i, t) in traces.iter().enumerate() {
        let samples = t.samples();
        let dec = decode_trace(&samples, params, stripes[i].len());
        decoded_stripes.push(dec.payload);
        sample_traces.push(samples);
    }
    let received = unstripe_bits(&decoded_stripes, payload.len());
    let bit_errors = received.iter().zip(payload).filter(|(a, b)| a != b).count();
    let secs = sys.latency_model().cycles_to_seconds(end);
    Ok(ChannelReport {
        sent: payload.to_vec(),
        received,
        bit_errors,
        error_rate: bit_errors as f64 / payload.len().max(1) as f64,
        duration_cycles: end,
        bandwidth_bytes_per_sec: payload.len() as f64 / 8.0 / secs,
        traces: sample_traces,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alignment::{align_classes, paired_sets, AlignmentConfig};
    use crate::covert::protocol::bits_from_bytes;
    use crate::eviction::{classify_pages, Locality};
    use gpubox_sim::{GpuId, ProcessCtx, SystemConfig};

    fn channel_fixture(noiseless: bool) -> (MultiGpuSystem, ProcessId, ProcessId, Vec<SetPair>) {
        let cfg = if noiseless {
            SystemConfig::small_test().noiseless()
        } else {
            SystemConfig::small_test()
        };
        let mut sys = MultiGpuSystem::new(cfg);
        let thr = Thresholds::paper_defaults();
        let trojan = sys.create_process(GpuId::new(0));
        let spy = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
        let bytes = 96 * 4096u64;
        let tclasses = {
            let mut ctx = ProcessCtx::new(&mut sys, trojan, 0);
            let b = ctx.malloc_on(GpuId::new(0), bytes).unwrap();
            classify_pages(&mut ctx, b, bytes, 4096, 128, 16, &thr, Locality::Local).unwrap()
        };
        let sclasses = {
            let mut ctx = ProcessCtx::new(&mut sys, spy, 0);
            let b = ctx.malloc_on(GpuId::new(0), bytes).unwrap();
            classify_pages(&mut ctx, b, bytes, 4096, 128, 16, &thr, Locality::Remote).unwrap()
        };
        let matches = align_classes(
            &mut sys,
            trojan,
            &tclasses,
            spy,
            &sclasses,
            16,
            &AlignmentConfig::default(),
        )
        .unwrap();
        let pairs = paired_sets(&tclasses, &sclasses, &matches, 8, 16)
            .into_iter()
            .map(|(t, s)| SetPair { trojan: t, spy: s })
            .collect();
        (sys, trojan, spy, pairs)
    }

    #[test]
    fn single_set_transmission_is_error_free_noiseless() {
        let (mut sys, trojan, spy, pairs) = channel_fixture(true);
        let payload = bits_from_bytes(b"Hi");
        let report = transmit(
            &mut sys,
            trojan,
            spy,
            &pairs[..1],
            &payload,
            &ChannelParams::default(),
            Thresholds::paper_defaults(),
        )
        .unwrap();
        assert_eq!(report.bit_errors, 0, "received {:?}", report.received);
        assert!(report.bandwidth_bytes_per_sec > 0.0);
    }

    #[test]
    fn four_set_transmission_has_low_error_with_noise() {
        let (mut sys, trojan, spy, pairs) = channel_fixture(false);
        let payload = bits_from_bytes(b"The quick brown fox jumps!");
        let report = transmit(
            &mut sys,
            trojan,
            spy,
            &pairs[..4],
            &payload,
            &ChannelParams::default(),
            Thresholds::paper_defaults(),
        )
        .unwrap();
        assert!(
            report.error_rate < 0.08,
            "error rate {} too high ({} errors)",
            report.error_rate,
            report.bit_errors
        );
    }

    #[test]
    fn more_sets_increase_bandwidth() {
        let (mut sys, trojan, spy, pairs) = channel_fixture(true);
        let payload = bits_from_bytes(b"bandwidth scaling test!!");
        let params = ChannelParams::default();
        let thr = Thresholds::paper_defaults();
        let bw1 = transmit(&mut sys, trojan, spy, &pairs[..1], &payload, &params, thr)
            .unwrap()
            .bandwidth_bytes_per_sec;
        let bw4 = transmit(&mut sys, trojan, spy, &pairs[..4], &payload, &params, thr)
            .unwrap()
            .bandwidth_bytes_per_sec;
        assert!(bw4 > bw1 * 2.0, "bw1={bw1} bw4={bw4}");
    }

    #[test]
    fn trace_levels_match_fig10() {
        // '0' slots show ~630-cycle probes, '1' slots ~950 (paper Fig. 10).
        let (mut sys, trojan, spy, pairs) = channel_fixture(true);
        let payload = vec![1, 1, 1, 1, 0, 0, 0, 0, 1, 1, 1, 1];
        let report = transmit(
            &mut sys,
            trojan,
            spy,
            &pairs[..1],
            &payload,
            &ChannelParams::default(),
            Thresholds::paper_defaults(),
        )
        .unwrap();
        assert_eq!(report.bit_errors, 0);
        let trace = &report.traces[0];
        let ones: Vec<u32> = trace
            .iter()
            .filter(|s| s.misses > 8)
            .map(|s| s.mean_latency)
            .collect();
        let zeros: Vec<u32> = trace
            .iter()
            .filter(|s| s.misses <= 8)
            .map(|s| s.mean_latency)
            .collect();
        assert!(!ones.is_empty() && !zeros.is_empty());
        let avg = |v: &[u32]| v.iter().map(|&x| f64::from(x)).sum::<f64>() / v.len() as f64;
        assert!(
            (avg(&ones) - 950.0).abs() < 120.0,
            "one-level {}",
            avg(&ones)
        );
        assert!(
            (avg(&zeros) - 630.0).abs() < 120.0,
            "zero-level {}",
            avg(&zeros)
        );
    }
}
