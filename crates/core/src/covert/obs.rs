//! Channel-side observability: latency percentiles over spy traces and
//! trace-derived anatomy of a hardened transmission.
//!
//! The simulator-side tracer ([`gpubox_sim::telemetry`]) records *what
//! the box did*; this module interprets those records (plus the spy's
//! own probe traces) in covert-channel terms: per-slot latency
//! percentiles for [`super::ChannelReport`], and the fault-window /
//! retry-round / resync anatomy that `ext_trace_anatomy` renders as
//! overlapping spans.

use super::protocol::ProbeSample;
use gpubox_sim::telemetry::{LogHistogram, TraceKind, TraceRecord, TraceSpan};

/// Folds every per-lane probe sample's mean latency into one
/// [`LogHistogram`] — the source of [`super::ChannelReport`]'s
/// p50/p95/p99 slot-latency fields.
pub fn slot_latency_histogram(traces: &[Vec<ProbeSample>]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for lane in traces {
        for s in lane {
            h.record(u64::from(s.mean_latency));
        }
    }
    h
}

/// Trace-derived anatomy of one hardened transmission: the installed
/// fault windows, the stalls actually observed inside them, every
/// retransmission round, and the receive-side recovery events.
#[derive(Debug, Clone, Default)]
pub struct ChannelAnatomy {
    /// Installed outage windows, one span per
    /// [`TraceKind::FaultEpoch`] record (`[at, recover_at)`, the span
    /// name carries the link).
    pub fault_epochs: Vec<TraceSpan>,
    /// The window of fault responses the fabric *observed* — down-link
    /// stall waits ([`TraceKind::FaultDownWait`], first stall cycle to
    /// last stall's release), degraded-link stalls
    /// ([`TraceKind::FaultStall`]) and the reroute / PCIe-fallback
    /// decisions taken instead of stalling — if any line actually hit
    /// a faulted link.
    pub observed_fault: Option<TraceSpan>,
    /// Accesses rerouted around a down link
    /// ([`TraceKind::FaultReroute`]).
    pub reroutes: u64,
    /// Accesses diverted to the PCIe fallback path
    /// ([`TraceKind::PcieFallback`]).
    pub pcie_fallbacks: u64,
    /// One span per engine round of the resilient transport
    /// ([`TraceKind::RetryRound`]): launch defer to end-of-run clock.
    pub rounds: Vec<TraceSpan>,
    /// Frames sealed for transmission (all rounds).
    pub frame_seals: u64,
    /// Frames opened and delivered.
    pub frame_opens_ok: u64,
    /// Frames that failed verification on open.
    pub frame_opens_failed: u64,
    /// Sync-loss re-decodes attempted ([`TraceKind::Resync`]).
    pub resyncs: u64,
    /// Decision boundaries chosen ([`TraceKind::BoundaryChosen`]).
    pub boundaries_chosen: u64,
}

impl ChannelAnatomy {
    /// All spans on their display tracks — fault epochs on track 0,
    /// the observed stall window on track 1, rounds on track 2 — ready
    /// for [`gpubox_sim::telemetry::chrome_trace_json`]. Overlap between
    /// tracks is the point: the renderer shows which rounds ran inside
    /// the outage.
    pub fn spans(&self) -> Vec<TraceSpan> {
        let mut out = self.fault_epochs.clone();
        out.extend(self.observed_fault.clone());
        out.extend(self.rounds.iter().cloned());
        out
    }
}

/// Builds a [`ChannelAnatomy`] from drained trace records
/// (chronological, as [`gpubox_sim::telemetry::TraceSink::records`]
/// returns them).
pub fn extract_anatomy(records: &[TraceRecord]) -> ChannelAnatomy {
    let mut a = ChannelAnatomy::default();
    let mut stall_window: Option<(u64, u64)> = None;
    for r in records {
        match r.kind {
            TraceKind::FaultEpoch => a.fault_epochs.push(TraceSpan {
                name: format!("outage link {}", r.b),
                start: r.cycle,
                end: r.a,
                track: 0,
            }),
            TraceKind::FaultDownWait | TraceKind::FaultStall => {
                let release = r.cycle.saturating_add(r.a);
                stall_window = Some(match stall_window {
                    None => (r.cycle, release),
                    Some((lo, hi)) => (lo.min(r.cycle), hi.max(release)),
                });
            }
            TraceKind::FaultReroute | TraceKind::PcieFallback => {
                if r.kind == TraceKind::FaultReroute {
                    a.reroutes += 1;
                } else {
                    a.pcie_fallbacks += 1;
                }
                stall_window = Some(match stall_window {
                    None => (r.cycle, r.cycle),
                    Some((lo, hi)) => (lo.min(r.cycle), hi.max(r.cycle)),
                });
            }
            TraceKind::RetryRound => a.rounds.push(TraceSpan {
                name: format!("round {}", r.b),
                start: r.cycle,
                end: r.a,
                track: 2,
            }),
            TraceKind::FrameSeal => a.frame_seals += 1,
            TraceKind::FrameOpen => {
                if r.b == 1 {
                    a.frame_opens_ok += 1;
                } else {
                    a.frame_opens_failed += 1;
                }
            }
            TraceKind::Resync => a.resyncs += 1,
            TraceKind::BoundaryChosen => a.boundaries_chosen += 1,
            _ => {}
        }
    }
    a.observed_fault = stall_window.map(|(lo, hi)| TraceSpan {
        name: "observed fault responses".to_string(),
        start: lo,
        end: hi,
        track: 1,
    });
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpubox_sim::telemetry::NO_PROCESS;

    fn rec(kind: TraceKind, cycle: u64, a: u64, b: u64) -> TraceRecord {
        TraceRecord {
            cycle,
            a,
            b,
            process: NO_PROCESS,
            kind,
        }
    }

    #[test]
    fn latency_histogram_pools_all_lanes() {
        let mk = |lat: u32| ProbeSample {
            at: 0,
            misses: 0,
            lines: 8,
            mean_latency: lat,
        };
        let traces = vec![vec![mk(300), mk(700)], vec![mk(950)]];
        let h = slot_latency_histogram(&traces);
        assert_eq!(h.count(), 3);
        assert_eq!(h.p50(), 512, "median bucket floor for 700");
        assert_eq!(h.p99(), 512, "950 shares the 512..1023 bucket");
    }

    #[test]
    fn anatomy_collects_windows_rounds_and_counts() {
        let records = vec![
            rec(TraceKind::FaultEpoch, 1_000, 5_000, 3),
            rec(TraceKind::FrameSeal, 0, 0, 0),
            rec(TraceKind::FrameSeal, 0, 1, 0),
            rec(TraceKind::FaultDownWait, 1_200, 800, 3),
            rec(TraceKind::PcieFallback, 1_100, 1, 0),
            rec(TraceKind::FaultDownWait, 2_000, 500, 3),
            rec(TraceKind::FaultReroute, 2_400, 1, 0),
            rec(TraceKind::RetryRound, 0, 9_000, 0),
            rec(TraceKind::Resync, 0, 0, 1),
            rec(TraceKind::BoundaryChosen, 0, 640, 0),
            rec(TraceKind::FrameOpen, 9_000, 0, 1),
            rec(TraceKind::FrameOpen, 9_000, 1, 0),
            rec(TraceKind::RetryRound, 4_000, 13_000, 1),
        ];
        let a = extract_anatomy(&records);
        assert_eq!(a.fault_epochs.len(), 1);
        assert_eq!(a.fault_epochs[0].start, 1_000);
        assert_eq!(a.fault_epochs[0].end, 5_000);
        let w = a.observed_fault.as_ref().expect("stalls were recorded");
        assert_eq!((w.start, w.end), (1_100, 2_500));
        assert_eq!(a.pcie_fallbacks, 1);
        assert_eq!(a.reroutes, 1);
        assert!(
            w.start >= a.fault_epochs[0].start && w.end <= a.fault_epochs[0].end,
            "observed stalls sit inside the installed window"
        );
        assert_eq!(a.rounds.len(), 2);
        assert_eq!(a.frame_seals, 2);
        assert_eq!(a.frame_opens_ok, 1);
        assert_eq!(a.frame_opens_failed, 1);
        assert_eq!(a.resyncs, 1);
        assert_eq!(a.boundaries_chosen, 1);
        // Track layout: epochs 0, observed 1, rounds 2.
        let spans = a.spans();
        assert_eq!(spans.len(), 4);
        assert!(spans.iter().any(|s| s.track == 1));
    }
}
