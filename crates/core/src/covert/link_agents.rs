//! Bandwidth-trojan and throughput-spy agents for the **NVLink-congestion
//! covert channel** — the paper's second channel family.
//!
//! The Prime+Probe channel ([`crate::covert::TrojanAgent`] /
//! [`crate::covert::SpyProbeAgent`]) needs trojan and spy to
//! contend on the *same L2 cache set*. This channel needs no shared cache
//! state at all: trojan and spy only need routes that cross **one common
//! NVLink link** of the timed fabric
//! ([`gpubox_sim::fabric`]). To send a `1` the
//! [`LinkTrojanAgent`] saturates the link with back-to-back warp-wide
//! transfers of its *own* remote buffer (the lines stay L2-resident —
//! bandwidth is consumed whether or not they hit); to send a `0` it idles
//! on dummy arithmetic. The receiving [`LinkSpyAgent`] keeps streaming
//! its own, completely disjoint remote
//! buffer and watches nothing but **its own transfer latency**: when the
//! shared link is saturated its lines queue behind the trojan's occupancy
//! windows and the per-probe mean latency jumps by hundreds of cycles.
//!
//! Framing, slot pacing and decoding are shared with the Prime+Probe
//! channel through the unified pipeline
//! ([`crate::covert::transmit_over`]): the same alternating preamble
//! locks the slot phase, and this medium's default decoder anchors its
//! decision boundary on robust quantiles
//! ([`crate::covert::BoundaryPolicy::Quantile`]) because the congested
//! level is a heavy queue-wait tail rather than a second tight cluster;
//! the matched filter ([`crate::covert::Decoder::MatchedFilter`]) runs
//! on the same traces when tenant noise pushes the vote decoder's error
//! floor up.

use super::agents::SpyTrace;
use super::protocol::{ChannelParams, ProbeSample};
use gpubox_sim::{Agent, Op, OpResult, ProbeStage, ProcessId, VirtAddr};

/// The bandwidth trojan for one frame: paces bit slots on its own clock;
/// during a `1` slot it issues back-to-back warp-parallel transfers of
/// its burst lines (saturating every link on its route); during a `0`
/// slot it spins on dummy computation of comparable duration.
#[derive(Debug)]
pub struct LinkTrojanAgent {
    pid: ProcessId,
    lines: Vec<VirtAddr>,
    frame: Vec<u8>,
    slot_cycles: u64,
    start: Option<u64>,
    /// Estimated duration of one full-width transfer burst; adapts to
    /// the measured burst duration, so pacing stays calibrated even when
    /// the trojan's own bursts queue on the link.
    burst_estimate: u64,
    /// Whether the estimate may be updated from the next result (partial
    /// boundary bursts would corrupt it).
    full_burst: bool,
    bit_idx: usize,
    /// Evasion: percentage of a `1` slot actively driven.
    duty_pct: u32,
    /// Evasion: per-bit active-phase jitter span, cycles.
    slot_jitter: u64,
}

impl LinkTrojanAgent {
    /// Creates a transmitter sending `frame` by saturating the links on
    /// the route of `lines` (remote lines of the trojan's own buffer).
    pub fn new(pid: ProcessId, lines: &[VirtAddr], frame: Vec<u8>, params: &ChannelParams) -> Self {
        LinkTrojanAgent {
            pid,
            lines: lines.to_vec(),
            frame,
            slot_cycles: params.slot_cycles,
            start: None,
            burst_estimate: 900,
            full_burst: false,
            bit_idx: 0,
            duty_pct: params.trojan_duty_pct,
            slot_jitter: params.trojan_slot_jitter,
        }
    }
}

impl Agent for LinkTrojanAgent {
    fn next_op(&mut self, now: u64, stage: &mut ProbeStage) -> Op {
        let start = *self.start.get_or_insert(now);
        if self.bit_idx >= self.frame.len() {
            return Op::Done;
        }
        let slot_end = start + (self.bit_idx as u64 + 1) * self.slot_cycles;
        if now >= slot_end {
            self.bit_idx += 1;
            return self.next_op(now, stage);
        }
        let remaining = slot_end - now;
        if self.frame[self.bit_idx] == 1 {
            let (a0, a1) = super::agents::active_window(
                slot_end,
                self.slot_cycles,
                self.duty_pct,
                self.slot_jitter,
                self.bit_idx,
            );
            if now < a0 {
                // Evasion: idle until the jittered active phase opens.
                return Op::Compute(a0 - now);
            }
            if now >= a1 {
                // Evasion: duty budget spent; idle out the slot tail.
                return Op::Compute(slot_end - now);
            }
            let active_remaining = a1 - now;
            if active_remaining < self.burst_estimate {
                // Not enough room for a full burst: issue a proportionally
                // narrower one so the link stays saturated right up to the
                // slot boundary (an idle slot tail would hand the spy
                // uncongested samples inside a `1` slot), with bounded
                // overrun into the next slot.
                let n = (self.lines.len() as u64 * active_remaining / self.burst_estimate.max(1))
                    .clamp(1, self.lines.len() as u64) as usize;
                self.full_burst = false;
                stage.extend_from_slice(&self.lines[..n]);
                Op::LoadBatch
            } else {
                self.full_burst = true;
                stage.extend_from_slice(&self.lines);
                Op::LoadBatch
            }
        } else {
            Op::Compute(remaining.min(self.burst_estimate))
        }
    }

    fn on_result(&mut self, res: &OpResult<'_>) {
        if !res.latencies.is_empty() && self.full_burst {
            self.burst_estimate = (self.burst_estimate + res.duration) / 2;
        }
    }

    fn process(&self) -> ProcessId {
        self.pid
    }

    fn label(&self) -> &str {
        "link-trojan"
    }
}

/// The throughput spy: streams its own remote buffer warp-parallel (with
/// [`ChannelParams::spy_gap`] idle cycles between probes so its own
/// backlog drains off the link) and records per-probe mean latency.
///
/// The recorded [`ProbeSample::misses`] is always 0: unlike the
/// Prime+Probe spy this agent observes *no cache state* — decoding uses
/// only [`ProbeSample::mean_latency`] against the adaptive boundary.
///
/// # Dithered sampling
///
/// Each inter-probe gap is lengthened by a small deterministic dither
/// (a Weyl sequence over the probe index, up to [`SPY_DITHER_SPAN`]
/// cycles). Without it the spy's fixed probe period can phase-lock onto
/// the trojan's burst period: every queue wait lengthens exactly one
/// probe period, pushing the next probe past the link's busy window, so
/// a periodic spy settles into sampling only the idle gaps between
/// bursts and the channel goes silent. Dithering breaks the resonance
/// the way dithered sampling defeats aliasing in any measurement loop —
/// and stays bit-reproducible because the sequence depends only on the
/// probe index, not on an RNG.
#[derive(Debug)]
pub struct LinkSpyAgent {
    pid: ProcessId,
    lines: Vec<VirtAddr>,
    gap: u64,
    stop_after: u64,
    trace: SpyTrace,
    gap_next: bool,
    probe_idx: u64,
}

/// Upper bound (exclusive) of the spy's per-probe gap dither, cycles.
/// Small relative to a slot (default 6000) so slot votes stay dense, but
/// wide and prime so no trojan burst period divides it.
pub const SPY_DITHER_SPAN: u64 = 509;

impl LinkSpyAgent {
    /// Creates a receiver streaming `lines` until its clock passes
    /// `stop_after`.
    pub fn new(pid: ProcessId, lines: &[VirtAddr], params: &ChannelParams, stop_after: u64) -> Self {
        LinkSpyAgent {
            pid,
            lines: lines.to_vec(),
            gap: params.spy_gap,
            stop_after,
            trace: SpyTrace::default(),
            gap_next: false,
            probe_idx: 0,
        }
    }

    /// Handle to the recorded trace.
    pub fn trace(&self) -> SpyTrace {
        self.trace.clone()
    }
}

impl Agent for LinkSpyAgent {
    fn next_op(&mut self, now: u64, stage: &mut ProbeStage) -> Op {
        if now >= self.stop_after {
            return Op::Done;
        }
        if self.gap_next {
            self.gap_next = false;
            // Weyl-sequence dither: probe_idx * golden-ratio constant,
            // folded into [0, SPY_DITHER_SPAN).
            let dither =
                (self.probe_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) % SPY_DITHER_SPAN;
            return Op::Compute(self.gap + dither);
        }
        self.gap_next = true;
        self.probe_idx += 1;
        stage.extend_from_slice(&self.lines);
        Op::LoadBatch
    }

    fn on_result(&mut self, res: &OpResult<'_>) {
        if res.latencies.is_empty() {
            return;
        }
        let mean =
            res.latencies.iter().map(|&l| u64::from(l)).sum::<u64>() / res.latencies.len() as u64;
        self.trace.push(ProbeSample {
            at: res.started_at,
            misses: 0,
            lines: res.latencies.len() as u32,
            mean_latency: mean as u32,
        });
    }

    fn process(&self) -> ProcessId {
        self.pid
    }

    fn label(&self) -> &str {
        "link-spy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_trojan_bursts_during_one_bits() {
        let params = ChannelParams {
            slot_cycles: 5000,
            ..Default::default()
        };
        let lines = [VirtAddr(4096), VirtAddr(8192), VirtAddr(12288)];
        let mut t = LinkTrojanAgent::new(ProcessId(0), &lines, vec![1, 0], &params);
        let mut stage = ProbeStage::new();
        match t.next_op(0, &mut stage) {
            Op::LoadBatch => assert_eq!(stage.len(), 3, "whole burst staged"),
            other => panic!("expected transfer burst, got {other:?}"),
        }
        // Second slot is a 0: dummy computation, no memory traffic.
        stage.clear();
        match t.next_op(5000, &mut stage) {
            Op::Compute(c) => assert!(c <= 5000 && stage.is_empty()),
            other => panic!("expected compute, got {other:?}"),
        }
        assert_eq!(t.next_op(10_000, &mut stage), Op::Done);
    }

    #[test]
    fn link_spy_records_mean_latency_only() {
        let params = ChannelParams {
            spy_gap: 200,
            ..Default::default()
        };
        let lines = [VirtAddr(4096), VirtAddr(8192)];
        let mut s = LinkSpyAgent::new(ProcessId(1), &lines, &params, 10_000);
        let trace = s.trace();
        let mut stage = ProbeStage::new();
        assert!(matches!(s.next_op(0, &mut stage), Op::LoadBatch));
        assert_eq!(stage.len(), 2);
        s.on_result(&OpResult {
            started_at: 0,
            duration: 700,
            value: 0,
            latencies: &[650, 850],
        });
        let samples = trace.samples();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].mean_latency, 750);
        assert_eq!(samples[0].misses, 0, "no cache observation at all");
        // Probe and gap alternate; the gap carries the sampling dither.
        stage.clear();
        match s.next_op(700, &mut stage) {
            Op::Compute(c) => assert!(
                (200..200 + SPY_DITHER_SPAN).contains(&c),
                "dithered gap out of range: {c}"
            ),
            other => panic!("expected dithered gap, got {other:?}"),
        }
        assert!(matches!(s.next_op(900, &mut stage), Op::LoadBatch));
        assert_eq!(s.next_op(20_000, &mut stage), Op::Done);
    }
}
