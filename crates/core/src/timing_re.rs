//! Timing reverse engineering (paper Sec. III-A, Fig. 4).
//!
//! The microbenchmark allocates a buffer on a GPU, walks it at cache-line
//! stride with `ldcg`-style loads, and records access times for the cold
//! pass (DRAM) and the warm pass (L2). Run once against local memory and
//! once against a peer GPU's memory, this produces the paper's four
//! latency clusters; 1-D k-means then extracts cluster centres and the
//! hit/miss [`Thresholds`].

use crate::thresholds::Thresholds;
use gpubox_sim::{GpuId, MultiGpuSystem, ProcessCtx, ProcessId, SimResult};

/// Raw samples of one timing experiment.
#[derive(Debug, Clone, Default)]
pub struct TimingSamples {
    /// Cold (DRAM) access latencies against local memory.
    pub local_miss: Vec<u32>,
    /// Warm (L2 hit) latencies against local memory.
    pub local_hit: Vec<u32>,
    /// Cold latencies against remote memory.
    pub remote_miss: Vec<u32>,
    /// Warm latencies against remote memory.
    pub remote_hit: Vec<u32>,
}

impl TimingSamples {
    /// All samples flattened (the Fig. 4 histogram input).
    pub fn all(&self) -> Vec<u32> {
        let mut v = Vec::with_capacity(
            self.local_miss.len()
                + self.local_hit.len()
                + self.remote_miss.len()
                + self.remote_hit.len(),
        );
        v.extend_from_slice(&self.local_hit);
        v.extend_from_slice(&self.local_miss);
        v.extend_from_slice(&self.remote_hit);
        v.extend_from_slice(&self.remote_miss);
        v
    }
}

/// Result of the full timing reverse-engineering pass.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// The raw samples.
    pub samples: TimingSamples,
    /// The four cluster centres, ascending (local hit, local miss,
    /// remote hit, remote miss on the DGX-1).
    pub centers: [f64; 4],
    /// Derived decision thresholds.
    pub thresholds: Thresholds,
}

/// Runs the Fig. 4 microbenchmark: `accesses` lines are walked cold then
/// warm, locally (buffer on `local`) and remotely (buffer on `remote`,
/// issued from `local`... the spy's view: a process on `local` with its
/// buffer homed on `remote`).
///
/// # Errors
///
/// Propagates allocation/peer-access failures from the simulator.
pub fn measure_timing(
    sys: &mut MultiGpuSystem,
    local: GpuId,
    remote: GpuId,
    accesses: u64,
) -> SimResult<TimingReport> {
    let pid = sys.create_process(local);
    sys.enable_peer_access(pid, remote)?;
    let line = sys.config().cache.line_size;
    let mut samples = TimingSamples::default();

    // Local buffer: cold pass = local DRAM, warm pass = local L2 hit.
    run_passes(
        sys,
        pid,
        local,
        accesses,
        line,
        &mut samples.local_miss,
        &mut samples.local_hit,
    )?;
    // Remote buffer: cold = remote DRAM over NVLink, warm = remote L2 hit.
    run_passes(
        sys,
        pid,
        remote,
        accesses,
        line,
        &mut samples.remote_miss,
        &mut samples.remote_hit,
    )?;

    let centers = kmeans4(&samples.all());
    let thresholds = Thresholds {
        local_miss: midpoint(centers[0], centers[1]),
        remote_miss: midpoint(centers[2], centers[3]),
    };
    Ok(TimingReport {
        samples,
        centers,
        thresholds,
    })
}

fn run_passes(
    sys: &mut MultiGpuSystem,
    pid: ProcessId,
    on: GpuId,
    accesses: u64,
    line: u64,
    cold: &mut Vec<u32>,
    warm: &mut Vec<u32>,
) -> SimResult<()> {
    let mut ctx = ProcessCtx::new(sys, pid, 0);
    let buf = ctx.malloc_on(on, accesses * line)?;
    // Cold pass: stride of one cache line, ldcg loads — every access goes
    // to DRAM and fills the L2 (paper: "this first cold access shows the
    // DRAM access time").
    for i in 0..accesses {
        let (_, cycles) = ctx.ldcg(buf.offset(i * line))?;
        cold.push(cycles);
        // Dummy op so the access is "not optimized out" — a few ALU cycles.
        ctx.compute(4);
    }
    // Warm pass: the same addresses are now L2-resident.
    for i in 0..accesses {
        let (_, cycles) = ctx.ldcg(buf.offset(i * line))?;
        warm.push(cycles);
        ctx.compute(4);
    }
    Ok(())
}

fn midpoint(a: f64, b: f64) -> u32 {
    ((a + b) / 2.0).round() as u32
}

/// 1-D k-means with k=4, initialised at the sample quantiles. Returns the
/// cluster centres in ascending order.
pub fn kmeans4(samples: &[u32]) -> [f64; 4] {
    assert!(samples.len() >= 4, "need at least 4 samples");
    let mut sorted: Vec<f64> = samples.iter().map(|&s| s as f64).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let q = |f: f64| sorted[((sorted.len() - 1) as f64 * f) as usize];
    let mut centers = [q(0.125), q(0.375), q(0.625), q(0.875)];
    for _ in 0..64 {
        let mut sums = [0.0f64; 4];
        let mut counts = [0usize; 4];
        for &s in &sorted {
            let mut best = 0;
            for k in 1..4 {
                if (s - centers[k]).abs() < (s - centers[best]).abs() {
                    best = k;
                }
            }
            sums[best] += s;
            counts[best] += 1;
        }
        let mut moved = false;
        for k in 0..4 {
            if counts[k] > 0 {
                let c = sums[k] / counts[k] as f64;
                if (c - centers[k]).abs() > 1e-9 {
                    moved = true;
                }
                centers[k] = c;
            }
        }
        centers.sort_by(|a, b| a.partial_cmp(b).unwrap());
        if !moved {
            break;
        }
    }
    centers
}

/// Builds a histogram over the samples with the given bin width — the
/// exact artefact plotted in the paper's Fig. 4.
pub fn histogram(samples: &[u32], bin_width: u32) -> Vec<(u32, usize)> {
    use std::collections::BTreeMap;
    let mut bins: BTreeMap<u32, usize> = BTreeMap::new();
    for &s in samples {
        *bins.entry(s / bin_width * bin_width).or_default() += 1;
    }
    bins.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpubox_sim::SystemConfig;

    #[test]
    fn four_clusters_recovered_on_dgx1() {
        let mut sys = MultiGpuSystem::new(SystemConfig::dgx1());
        let rep = measure_timing(&mut sys, GpuId::new(0), GpuId::new(1), 48).unwrap();
        // Cluster centres must land near the calibrated constants.
        let expect = [270.0, 450.0, 630.0, 950.0];
        for (c, e) in rep.centers.iter().zip(expect) {
            assert!((c - e).abs() < 30.0, "center {c} far from {e}");
        }
        // Thresholds separate the clusters.
        assert!(rep.thresholds.local_miss > 300 && rep.thresholds.local_miss < 430);
        assert!(rep.thresholds.remote_miss > 700 && rep.thresholds.remote_miss < 900);
    }

    #[test]
    fn warm_pass_is_faster_than_cold() {
        let mut sys = MultiGpuSystem::new(SystemConfig::dgx1().noiseless());
        let rep = measure_timing(&mut sys, GpuId::new(0), GpuId::new(2), 32).unwrap();
        let avg = |v: &[u32]| v.iter().map(|&x| x as f64).sum::<f64>() / v.len() as f64;
        assert!(avg(&rep.samples.local_hit) < avg(&rep.samples.local_miss));
        assert!(avg(&rep.samples.remote_hit) < avg(&rep.samples.remote_miss));
        assert!(avg(&rep.samples.local_miss) < avg(&rep.samples.remote_hit));
    }

    #[test]
    fn kmeans_separates_synthetic_clusters() {
        let mut data = Vec::new();
        for base in [100u32, 300, 500, 900] {
            for d in 0..20 {
                data.push(base + d % 7);
            }
        }
        let c = kmeans4(&data);
        for (got, want) in c.iter().zip([103.0, 303.0, 503.0, 903.0]) {
            assert!((got - want).abs() < 10.0, "{got} vs {want}");
        }
    }

    #[test]
    fn histogram_bins_sum_to_sample_count() {
        let samples = vec![10, 12, 25, 100, 101, 102];
        let h = histogram(&samples, 10);
        assert_eq!(h.iter().map(|&(_, c)| c).sum::<usize>(), samples.len());
        assert_eq!(h[0], (10, 2));
    }
}
