//! The memorygram: a cache-set × time matrix of observed misses.
//!
//! The paper (Sec. V) records, for every monitored L2 cache set, how many
//! of the spy's probe lines missed in each probe sweep. Plotted as an
//! image (Fig. 11/14/15), each victim application leaves a distinctive
//! footprint; numerically it feeds the fingerprinting classifier and the
//! MLP-extraction statistics.

use serde::{Deserialize, Serialize};

/// A set × time miss matrix. Rows are probe sweeps (time), columns are
/// monitored cache sets; each cell counts missed lines (0..=ways).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Memorygram {
    sets: usize,
    rows: Vec<Vec<u8>>,
}

impl Memorygram {
    /// Creates an empty memorygram over `sets` monitored sets.
    pub fn new(sets: usize) -> Self {
        Memorygram {
            sets,
            rows: Vec::new(),
        }
    }

    /// Number of monitored sets (columns).
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Number of recorded sweeps (rows).
    pub fn num_sweeps(&self) -> usize {
        self.rows.len()
    }

    /// Appends one sweep.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != num_sets()`.
    pub fn push_sweep(&mut self, row: Vec<u8>) {
        assert_eq!(row.len(), self.sets, "sweep width mismatch");
        self.rows.push(row);
    }

    /// Cell accessor: misses observed at `(sweep, set)`.
    pub fn get(&self, sweep: usize, set: usize) -> u8 {
        self.rows[sweep][set]
    }

    /// Iterates over sweeps.
    pub fn sweeps(&self) -> impl Iterator<Item = &[u8]> {
        self.rows.iter().map(Vec::as_slice)
    }

    /// Total misses per set, summed over time (the Fig. 13 histogram).
    pub fn misses_per_set(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.sets];
        for row in &self.rows {
            for (s, &v) in row.iter().enumerate() {
                out[s] += u64::from(v);
            }
        }
        out
    }

    /// Total misses per sweep, summed over sets (the temporal activity
    /// profile used for epoch detection, Fig. 15).
    pub fn misses_per_sweep(&self) -> Vec<u64> {
        self.rows
            .iter()
            .map(|r| r.iter().map(|&v| u64::from(v)).sum())
            .collect()
    }

    /// Grand total of observed misses.
    pub fn total_misses(&self) -> u64 {
        self.misses_per_set().iter().sum()
    }

    /// Average misses per set over the whole run (the paper's Table II
    /// metric).
    pub fn average_misses_per_set(&self) -> f64 {
        if self.sets == 0 {
            return 0.0;
        }
        self.total_misses() as f64 / self.sets as f64
    }

    /// Downsamples to a `rows_out × cols_out` normalised image in `[0,1]`
    /// (mean pooling) — the classifier input.
    pub fn downsample(&self, rows_out: usize, cols_out: usize, max_cell: f64) -> Vec<f32> {
        let mut img = vec![0.0f32; rows_out * cols_out];
        if self.rows.is_empty() {
            return img;
        }
        let mut counts = vec![0u32; rows_out * cols_out];
        let nr = self.rows.len();
        for (r, row) in self.rows.iter().enumerate() {
            let ro = r * rows_out / nr;
            for (c, &v) in row.iter().enumerate() {
                let co = c * cols_out / self.sets;
                let idx = ro * cols_out + co;
                img[idx] += f64::from(v) as f32;
                counts[idx] += 1;
            }
        }
        for (v, &n) in img.iter_mut().zip(&counts) {
            if n > 0 {
                *v = (*v / n as f32 / max_cell as f32).min(1.0);
            }
        }
        img
    }

    /// Renders the memorygram as rows of ASCII intensity characters —
    /// the textual stand-in for the paper's figure images.
    pub fn to_ascii(&self, max_rows: usize, max_cols: usize) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let img = self.downsample(max_rows.min(self.num_sweeps().max(1)), max_cols, 16.0);
        let cols = max_cols;
        let mut out = String::new();
        for r in 0..img.len() / cols {
            for c in 0..cols {
                let v = img[r * cols + c];
                let idx = ((v * (RAMP.len() - 1) as f32).round() as usize).min(RAMP.len() - 1);
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gram() -> Memorygram {
        let mut g = Memorygram::new(4);
        g.push_sweep(vec![0, 1, 2, 3]);
        g.push_sweep(vec![4, 0, 0, 1]);
        g
    }

    #[test]
    fn totals_and_averages() {
        let g = gram();
        assert_eq!(g.misses_per_set(), vec![4, 1, 2, 4]);
        assert_eq!(g.misses_per_sweep(), vec![6, 5]);
        assert_eq!(g.total_misses(), 11);
        assert!((g.average_misses_per_set() - 11.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_rejected() {
        let mut g = Memorygram::new(4);
        g.push_sweep(vec![1, 2]);
    }

    #[test]
    fn downsample_preserves_shape_and_range() {
        let mut g = Memorygram::new(64);
        for t in 0..100 {
            g.push_sweep((0..64).map(|s| ((s + t) % 17) as u8).collect());
        }
        let img = g.downsample(8, 8, 16.0);
        assert_eq!(img.len(), 64);
        assert!(img.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(img.iter().any(|&v| v > 0.0));
    }

    #[test]
    fn serde_round_trip() {
        let g = gram();
        let s = serde_json::to_string(&g).unwrap();
        let back: Memorygram = serde_json::from_str(&s).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn ascii_render_is_nonempty() {
        let g = gram();
        let art = g.to_ascii(2, 4);
        assert_eq!(art.lines().count(), 2);
    }
}
