//! Multinomial logistic regression trained with mini-batch SGD.
//!
//! The paper trains a deep image classifier on memorygrams; the patterns
//! are separable enough that a from-scratch softmax regression reaches the
//! same ~100% accuracy, keeping this reproduction dependency-free.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Training hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Full passes over the training set.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// L2 weight decay.
    pub weight_decay: f32,
    /// Mini-batch size.
    pub batch: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 30,
            lr: 0.5,
            weight_decay: 1e-4,
            batch: 32,
            seed: 17,
        }
    }
}

/// A trained softmax classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticClassifier {
    classes: usize,
    features: usize,
    /// Row-major `[classes × features]`.
    weights: Vec<f32>,
    bias: Vec<f32>,
}

impl LogisticClassifier {
    /// Trains on `(features, label)` pairs; all feature vectors must share
    /// one length.
    ///
    /// # Panics
    ///
    /// Panics on empty data or inconsistent feature lengths.
    pub fn train(data: &[(Vec<f32>, usize)], classes: usize, cfg: &TrainConfig) -> Self {
        assert!(!data.is_empty(), "empty training set");
        let features = data[0].0.len();
        assert!(
            data.iter().all(|(x, _)| x.len() == features),
            "ragged features"
        );
        assert!(data.iter().all(|(_, y)| *y < classes), "label out of range");
        let mut model = LogisticClassifier {
            classes,
            features,
            weights: vec![0.0; classes * features],
            bias: vec![0.0; classes],
        };
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(cfg.batch) {
                model.sgd_step(data, chunk, cfg);
            }
        }
        model
    }

    fn sgd_step(&mut self, data: &[(Vec<f32>, usize)], idxs: &[usize], cfg: &TrainConfig) {
        let mut grad_w = vec![0.0f32; self.weights.len()];
        let mut grad_b = vec![0.0f32; self.bias.len()];
        for &i in idxs {
            let (x, y) = &data[i];
            let p = self.probabilities(x);
            for c in 0..self.classes {
                let err = p[c] - f32::from(c == *y);
                grad_b[c] += err;
                let row = &mut grad_w[c * self.features..(c + 1) * self.features];
                for (g, &xi) in row.iter_mut().zip(x) {
                    *g += err * xi;
                }
            }
        }
        let scale = cfg.lr / idxs.len() as f32;
        for (w, g) in self.weights.iter_mut().zip(&grad_w) {
            *w -= scale * (g + cfg.weight_decay * *w);
        }
        for (b, g) in self.bias.iter_mut().zip(&grad_b) {
            *b -= scale * g;
        }
    }

    /// Class probabilities for one feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the training feature length.
    pub fn probabilities(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.features, "feature length mismatch");
        let mut logits = vec![0.0f32; self.classes];
        for (c, logit) in logits.iter_mut().enumerate() {
            let row = &self.weights[c * self.features..(c + 1) * self.features];
            *logit = self.bias[c] + row.iter().zip(x).map(|(&w, &xi)| w * xi).sum::<f32>();
        }
        let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
        let z: f32 = exps.iter().sum();
        exps.into_iter().map(|e| e / z).collect()
    }

    /// The most probable class.
    pub fn predict(&self, x: &[f32]) -> usize {
        let p = self.probabilities(x);
        p.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes
    }

    /// Feature dimensionality.
    pub fn num_features(&self) -> usize {
        self.features
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn blob_data(n_per_class: usize, seed: u64) -> Vec<(Vec<f32>, usize)> {
        // Three well-separated Gaussian-ish blobs in 4-D.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let centers = [
            [0.0f32, 0.0, 1.0, 0.0],
            [1.0, 1.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 1.0],
        ];
        let mut data = Vec::new();
        for (label, c) in centers.iter().enumerate() {
            for _ in 0..n_per_class {
                let x: Vec<f32> = c
                    .iter()
                    .map(|&v| v + rng.gen_range(-0.15f32..0.15))
                    .collect();
                data.push((x, label));
            }
        }
        data
    }

    #[test]
    fn separable_blobs_reach_full_accuracy() {
        let train = blob_data(60, 1);
        let test = blob_data(40, 2);
        let model = LogisticClassifier::train(&train, 3, &TrainConfig::default());
        let correct = test.iter().filter(|(x, y)| model.predict(x) == *y).count();
        assert_eq!(correct, test.len(), "blobs must classify perfectly");
    }

    #[test]
    fn probabilities_sum_to_one() {
        let train = blob_data(20, 3);
        let model = LogisticClassifier::train(&train, 3, &TrainConfig::default());
        let p = model.probabilities(&train[0].0);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
        assert_eq!(p.len(), 3);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_rejected() {
        let _ = LogisticClassifier::train(&[], 2, &TrainConfig::default());
    }

    #[test]
    #[should_panic(expected = "feature length mismatch")]
    fn wrong_feature_length_rejected() {
        let train = blob_data(10, 4);
        let model = LogisticClassifier::train(&train, 3, &TrainConfig::default());
        let _ = model.predict(&[0.0; 3]);
    }
}
