//! # gpubox-classify — memorygram datasets and from-scratch classifiers
//!
//! Support crate for the side-channel attacks of *"Spy in the GPU-box"*
//! (ISCA 2023): the [`Memorygram`] type recorded by the spy, image-style
//! feature extraction, a multinomial [`LogisticClassifier`] (the paper
//! uses a DNN image classifier; softmax regression reaches the same ~100%
//! on these patterns), a [`KnnClassifier`] baseline, and evaluation
//! utilities (stratified splits, accuracy, the Fig. 12 confusion matrix).
//!
//! ```
//! use gpubox_classify::{LogisticClassifier, TrainConfig};
//! let data = vec![
//!     (vec![1.0, 0.0], 0), (vec![0.9, 0.1], 0),
//!     (vec![0.0, 1.0], 1), (vec![0.1, 0.9], 1),
//! ];
//! let model = LogisticClassifier::train(&data, 2, &TrainConfig::default());
//! assert_eq!(model.predict(&[0.95, 0.0]), 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod eval;
pub mod knn;
pub mod logreg;
pub mod memorygram;

pub use eval::{stratified_split, ConfusionMatrix, Split};
pub use knn::KnnClassifier;
pub use logreg::{LogisticClassifier, TrainConfig};
pub use memorygram::Memorygram;
