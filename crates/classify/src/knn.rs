//! k-nearest-neighbour baseline classifier.

/// A k-NN classifier over stored training vectors (L2 distance).
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    k: usize,
    data: Vec<(Vec<f32>, usize)>,
}

impl KnnClassifier {
    /// Stores the training data.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or the data is empty.
    pub fn new(data: Vec<(Vec<f32>, usize)>, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(!data.is_empty(), "empty training set");
        KnnClassifier { k, data }
    }

    /// Majority label among the k nearest stored vectors.
    ///
    /// Ties are broken deterministically: among equally voted labels the
    /// one with the nearer closest neighbour wins (then the smaller
    /// label), so predictions do not depend on hash-map iteration order.
    pub fn predict(&self, x: &[f32]) -> usize {
        let mut dists: Vec<(f32, usize)> = self
            .data
            .iter()
            .map(|(v, y)| {
                let d: f32 = v.iter().zip(x).map(|(&a, &b)| (a - b) * (a - b)).sum();
                (d, *y)
            })
            .collect();
        dists.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        let mut votes = std::collections::BTreeMap::new();
        for &(d, y) in dists.iter().take(self.k) {
            // `dists` is sorted, so the first insertion per label already
            // carries that label's nearest-neighbour distance.
            votes.entry(y).or_insert((0usize, d)).0 += 1;
        }
        votes
            .into_iter()
            .min_by(|a, b| {
                // Most votes first, then nearest representative, then label.
                b.1 .0.cmp(&a.1 .0).then(a.1 .1.total_cmp(&b.1 .1))
            })
            .map(|(y, _)| y)
            .unwrap_or(0)
    }

    /// Predicts a batch of feature vectors in parallel (deterministic:
    /// output order matches input order and each prediction is pure).
    pub fn predict_batch(&self, xs: &[Vec<f32>]) -> Vec<usize> {
        use rayon::prelude::*;
        xs.par_iter().map(|x| self.predict(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_neighbour_wins() {
        let data = vec![
            (vec![0.0, 0.0], 0),
            (vec![0.1, 0.0], 0),
            (vec![1.0, 1.0], 1),
            (vec![0.9, 1.0], 1),
        ];
        let knn = KnnClassifier::new(data, 3);
        assert_eq!(knn.predict(&[0.05, 0.02]), 0);
        assert_eq!(knn.predict(&[0.95, 0.98]), 1);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let _ = KnnClassifier::new(vec![(vec![0.0], 0)], 0);
    }
}
