//! k-nearest-neighbour baseline classifier.

/// A k-NN classifier over stored training vectors (L2 distance).
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    k: usize,
    data: Vec<(Vec<f32>, usize)>,
}

impl KnnClassifier {
    /// Stores the training data.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or the data is empty.
    pub fn new(data: Vec<(Vec<f32>, usize)>, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(!data.is_empty(), "empty training set");
        KnnClassifier { k, data }
    }

    /// Majority label among the k nearest stored vectors.
    pub fn predict(&self, x: &[f32]) -> usize {
        let mut dists: Vec<(f32, usize)> = self
            .data
            .iter()
            .map(|(v, y)| {
                let d: f32 = v.iter().zip(x).map(|(&a, &b)| (a - b) * (a - b)).sum();
                (d, *y)
            })
            .collect();
        dists.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut votes = std::collections::HashMap::new();
        for &(_, y) in dists.iter().take(self.k) {
            *votes.entry(y).or_insert(0usize) += 1;
        }
        votes
            .into_iter()
            .max_by_key(|&(_, n)| n)
            .map(|(y, _)| y)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_neighbour_wins() {
        let data = vec![
            (vec![0.0, 0.0], 0),
            (vec![0.1, 0.0], 0),
            (vec![1.0, 1.0], 1),
            (vec![0.9, 1.0], 1),
        ];
        let knn = KnnClassifier::new(data, 3);
        assert_eq!(knn.predict(&[0.05, 0.02]), 0);
        assert_eq!(knn.predict(&[0.95, 0.98]), 1);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_rejected() {
        let _ = KnnClassifier::new(vec![(vec![0.0], 0)], 0);
    }
}
