//! Dataset splitting and evaluation metrics (accuracy, confusion matrix).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A labelled dataset split.
#[derive(Debug, Clone, Default)]
pub struct Split {
    /// Training samples.
    pub train: Vec<(Vec<f32>, usize)>,
    /// Validation samples.
    pub val: Vec<(Vec<f32>, usize)>,
    /// Held-out test samples.
    pub test: Vec<(Vec<f32>, usize)>,
}

/// Stratified shuffle split, preserving class balance: `train_frac` and
/// `val_frac` of each class go to train/val, the rest to test (the paper
/// isolates a large test set: 150/150/1200 per class).
///
/// # Panics
///
/// Panics if the fractions are out of `[0, 1]` or sum above 1.
pub fn stratified_split(
    data: &[(Vec<f32>, usize)],
    classes: usize,
    train_frac: f64,
    val_frac: f64,
    seed: u64,
) -> Split {
    assert!((0.0..=1.0).contains(&train_frac) && (0.0..=1.0).contains(&val_frac));
    assert!(train_frac + val_frac <= 1.0, "fractions exceed 1");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut split = Split::default();
    for c in 0..classes {
        let mut idxs: Vec<usize> = (0..data.len()).filter(|&i| data[i].1 == c).collect();
        idxs.shuffle(&mut rng);
        let n = idxs.len();
        let n_train = (n as f64 * train_frac).round() as usize;
        let n_val = (n as f64 * val_frac).round() as usize;
        for (pos, &i) in idxs.iter().enumerate() {
            let sample = data[i].clone();
            if pos < n_train {
                split.train.push(sample);
            } else if pos < n_train + n_val {
                split.val.push(sample);
            } else {
                split.test.push(sample);
            }
        }
    }
    split.train.shuffle(&mut rng);
    split
}

/// A confusion matrix with per-class and overall metrics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    /// `counts[truth][predicted]`.
    counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Creates an empty matrix for `classes` classes.
    pub fn new(classes: usize) -> Self {
        ConfusionMatrix {
            classes,
            counts: vec![vec![0; classes]; classes],
        }
    }

    /// Records one prediction.
    pub fn record(&mut self, truth: usize, predicted: usize) {
        self.counts[truth][predicted] += 1;
    }

    /// Builds a matrix by evaluating `predict` over labelled samples.
    pub fn evaluate<F: FnMut(&[f32]) -> usize>(
        samples: &[(Vec<f32>, usize)],
        classes: usize,
        mut predict: F,
    ) -> Self {
        let mut cm = ConfusionMatrix::new(classes);
        for (x, y) in samples {
            cm.record(*y, predict(x));
        }
        cm
    }

    /// Raw cell count.
    pub fn get(&self, truth: usize, predicted: usize) -> usize {
        self.counts[truth][predicted]
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f64 {
        let correct: usize = (0..self.classes).map(|c| self.counts[c][c]).sum();
        let total: usize = self.counts.iter().flatten().sum();
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Per-class recall (the per-application accuracy the paper quotes).
    pub fn per_class_recall(&self) -> Vec<f64> {
        (0..self.classes)
            .map(|c| {
                let row: usize = self.counts[c].iter().sum();
                if row == 0 {
                    0.0
                } else {
                    self.counts[c][c] as f64 / row as f64
                }
            })
            .collect()
    }

    /// Renders the matrix with class labels, Fig. 12-style.
    pub fn render(&self, labels: &[&str]) -> String {
        let mut out = String::from("truth\\pred");
        for l in labels {
            out.push_str(&format!("{l:>8}"));
        }
        out.push('\n');
        for (c, row) in self.counts.iter().enumerate() {
            out.push_str(&format!("{:>10}", labels.get(c).copied().unwrap_or("?")));
            for &v in row {
                out.push_str(&format!("{v:>8}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_stratified() {
        let data: Vec<(Vec<f32>, usize)> = (0..100).map(|i| (vec![i as f32], i % 2)).collect();
        let s = stratified_split(&data, 2, 0.5, 0.2, 7);
        assert_eq!(s.train.len(), 50);
        assert_eq!(s.val.len(), 20);
        assert_eq!(s.test.len(), 30);
        let class0 = s.train.iter().filter(|(_, y)| *y == 0).count();
        assert_eq!(class0, 25, "class balance preserved");
    }

    #[test]
    fn accuracy_and_recall() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 0);
        cm.record(0, 0);
        cm.record(0, 1);
        cm.record(1, 1);
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
        let rec = cm.per_class_recall();
        assert!((rec[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((rec[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn evaluate_uses_predictor() {
        let samples = vec![(vec![0.0], 0), (vec![1.0], 1)];
        let cm = ConfusionMatrix::evaluate(&samples, 2, |x| usize::from(x[0] > 0.5));
        assert_eq!(cm.accuracy(), 1.0);
    }

    #[test]
    fn render_contains_labels() {
        let cm = ConfusionMatrix::new(2);
        let s = cm.render(&["BS", "HG"]);
        assert!(s.contains("BS") && s.contains("HG"));
    }

    #[test]
    #[should_panic(expected = "fractions exceed 1")]
    fn overfull_split_rejected() {
        let _ = stratified_split(&[(vec![0.0], 0)], 1, 0.8, 0.5, 1);
    }
}
