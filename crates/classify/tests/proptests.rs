//! Property-based tests for the classifier substrate.

use gpubox_classify::{
    stratified_split, ConfusionMatrix, LogisticClassifier, Memorygram, TrainConfig,
};
use proptest::prelude::*;

fn arb_gram() -> impl Strategy<Value = Memorygram> {
    (1usize..12, 1usize..30).prop_flat_map(|(sets, sweeps)| {
        prop::collection::vec(prop::collection::vec(0u8..=16, sets), sweeps).prop_map(move |rows| {
            let mut g = Memorygram::new(sets);
            for r in rows {
                g.push_sweep(r);
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Aggregations over the memorygram are mutually consistent.
    #[test]
    fn memorygram_aggregates_consistent(g in arb_gram()) {
        let per_set: u64 = g.misses_per_set().iter().sum();
        let per_sweep: u64 = g.misses_per_sweep().iter().sum();
        prop_assert_eq!(per_set, g.total_misses());
        prop_assert_eq!(per_sweep, g.total_misses());
        let avg = g.average_misses_per_set();
        prop_assert!((avg - g.total_misses() as f64 / g.num_sets() as f64).abs() < 1e-9);
    }

    /// Downsampling stays in [0, 1] and preserves emptiness.
    #[test]
    fn downsample_bounded(g in arb_gram(), rows in 1usize..10, cols in 1usize..10) {
        let img = g.downsample(rows, cols, 16.0);
        prop_assert_eq!(img.len(), rows * cols);
        prop_assert!(img.iter().all(|&v| (0.0..=1.0).contains(&v)));
        if g.total_misses() == 0 {
            prop_assert!(img.iter().all(|&v| v == 0.0));
        }
    }

    /// Memorygrams serialise losslessly.
    #[test]
    fn memorygram_serde_roundtrip(g in arb_gram()) {
        let s = serde_json::to_string(&g).unwrap();
        let back: Memorygram = serde_json::from_str(&s).unwrap();
        prop_assert_eq!(back, g);
    }

    /// Softmax probabilities are a distribution for any input.
    #[test]
    fn probabilities_form_distribution(
        x in prop::collection::vec(-5.0f32..5.0, 4),
        seed in 0u64..100,
    ) {
        let train: Vec<(Vec<f32>, usize)> = (0..12)
            .map(|i| {
                let c = i % 3;
                (vec![c as f32, -(c as f32), 1.0, 0.5 * i as f32], c)
            })
            .collect();
        let cfg = TrainConfig { seed, epochs: 5, ..Default::default() };
        let model = LogisticClassifier::train(&train, 3, &cfg);
        let p = model.probabilities(&x);
        prop_assert_eq!(p.len(), 3);
        prop_assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
        prop_assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        prop_assert!(model.predict(&x) < 3);
    }

    /// Stratified splits partition the data exactly.
    #[test]
    fn split_partitions_data(
        n_per_class in 4usize..40,
        train_frac in 0.1f64..0.6,
        val_frac in 0.1f64..0.3,
        seed in 0u64..50,
    ) {
        let data: Vec<(Vec<f32>, usize)> = (0..n_per_class * 3)
            .map(|i| (vec![i as f32], i % 3))
            .collect();
        let s = stratified_split(&data, 3, train_frac, val_frac, seed);
        prop_assert_eq!(s.train.len() + s.val.len() + s.test.len(), data.len());
        // No sample lost or duplicated (feature values are unique ids).
        let mut seen: Vec<i64> = s
            .train
            .iter()
            .chain(&s.val)
            .chain(&s.test)
            .map(|(x, _)| x[0] as i64)
            .collect();
        seen.sort_unstable();
        let expect: Vec<i64> = (0..(n_per_class * 3) as i64).collect();
        prop_assert_eq!(seen, expect);
    }

    /// Confusion-matrix accuracy is the fraction of diagonal mass.
    #[test]
    fn confusion_accuracy_bounds(
        preds in prop::collection::vec((0usize..4, 0usize..4), 1..100)
    ) {
        let mut cm = ConfusionMatrix::new(4);
        for &(t, p) in &preds {
            cm.record(t, p);
        }
        let acc = cm.accuracy();
        prop_assert!((0.0..=1.0).contains(&acc));
        let diag: usize = (0..4).map(|c| cm.get(c, c)).sum();
        prop_assert!((acc - diag as f64 / preds.len() as f64).abs() < 1e-12);
        let recalls = cm.per_class_recall();
        prop_assert!(recalls.iter().all(|r| (0.0..=1.0).contains(r)));
    }
}
