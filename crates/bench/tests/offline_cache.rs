//! The offline cache must be invisible to everything downstream: a
//! prepare that reuses cached page classes has to leave the simulator in
//! a state bit-identical to a prepare that derived them — same aligned
//! pairs, same channel bits, same cycle counts.

use gpubox_attacks::covert::bits_from_bytes;
use gpubox_attacks::{transmit, ChannelParams, OfflineCache};
use gpubox_bench::AttackSetup;
use gpubox_sim::{GpuId, SystemConfig};

fn channel_run(setup: &mut AttackSetup) -> (Vec<u8>, usize, u64) {
    let pairs = setup.aligned_pairs(4);
    let payload = bits_from_bytes(b"cache transparency probe");
    let rep = transmit(
        &mut setup.sys,
        setup.trojan,
        setup.spy,
        &pairs,
        &payload,
        &ChannelParams::default(),
        setup.thresholds,
    )
    .unwrap();
    (rep.received, rep.bit_errors, rep.duration_cycles)
}

#[test]
fn cached_prepare_is_bit_identical_to_derivation() {
    let cache = OfflineCache::new();
    let cfg = || SystemConfig::dgx1().with_seed(2026);
    let prep = |c| AttackSetup::prepare_with_cache(cfg(), GpuId::new(0), GpuId::new(1), c);

    // Miss: derives and populates the cache.
    let mut derived = prep(Some(&cache));
    assert!(!derived.offline_cached, "first prepare must derive");

    // First reuse: skips discovery, oracle-verifies the cached classes.
    let mut reused = prep(Some(&cache));
    assert!(reused.offline_cached, "second prepare must hit the cache");
    assert_eq!(derived.thresholds, reused.thresholds);
    assert_eq!(derived.trojan_classes.classes, reused.trojan_classes.classes);
    assert_eq!(derived.spy_classes.classes, reused.spy_classes.classes);

    // A cache-free prepare of the same config, as ground truth.
    let mut uncached = prep(None);
    assert!(!uncached.offline_cached);

    // Everything downstream — alignment, transmission, cycle counts —
    // must be bit-identical across all three.
    let a = channel_run(&mut derived);
    let b = channel_run(&mut reused);
    let c = channel_run(&mut uncached);
    assert_eq!(a, b, "cached reuse diverged from its own derivation run");
    assert_eq!(a, c, "cache participation changed the channel");

    let (hits, misses) = cache.stats();
    assert_eq!((hits, misses), (1, 1));
}

#[test]
fn distinct_configs_do_not_share_cache_entries() {
    let cache = OfflineCache::new();
    let s1 = AttackSetup::prepare_with_cache(
        SystemConfig::dgx1().with_seed(7),
        GpuId::new(0),
        GpuId::new(1),
        Some(&cache),
    );
    // Different seed → different placement → different fingerprint.
    let s2 = AttackSetup::prepare_with_cache(
        SystemConfig::dgx1().with_seed(8),
        GpuId::new(0),
        GpuId::new(1),
        Some(&cache),
    );
    // Different GPU pair under the same seed is also a different entry.
    let s3 = AttackSetup::prepare_with_cache(
        SystemConfig::dgx1().with_seed(7),
        GpuId::new(0),
        GpuId::new(2),
        Some(&cache),
    );
    assert!(!s1.offline_cached && !s2.offline_cached && !s3.offline_cached);
    let (hits, misses) = cache.stats();
    assert_eq!((hits, misses), (0, 3));
}
