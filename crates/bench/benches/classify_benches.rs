//! Criterion benches for the classifier substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use gpubox_classify::{LogisticClassifier, Memorygram, TrainConfig};

fn synth_gram(class: usize, seed: u64) -> Memorygram {
    let mut g = Memorygram::new(256);
    let mut state = seed | 1;
    for t in 0..120usize {
        let row: Vec<u8> = (0..256)
            .map(|s| {
                state ^= state << 13;
                state ^= state >> 7;
                let active = (s + class * 40) % 97 < 20 && (t / 10) % 2 == 0;
                if active {
                    (state % 12) as u8 + 4
                } else {
                    (state % 2) as u8
                }
            })
            .collect();
        g.push_sweep(row);
    }
    g
}

fn bench_classify(c: &mut Criterion) {
    let data: Vec<(Vec<f32>, usize)> = (0..120)
        .map(|i| {
            let class = i % 6;
            (
                synth_gram(class, i as u64 * 17 + 3).downsample(24, 24, 16.0),
                class,
            )
        })
        .collect();
    c.bench_function("logreg_train_120x576", |b| {
        b.iter(|| LogisticClassifier::train(&data, 6, &TrainConfig::default()))
    });
    let model = LogisticClassifier::train(&data, 6, &TrainConfig::default());
    c.bench_function("logreg_predict", |b| b.iter(|| model.predict(&data[0].0)));
    let gram = synth_gram(2, 99);
    c.bench_function("memorygram_downsample_256x120", |b| {
        b.iter(|| gram.downsample(24, 24, 16.0))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_classify
}
criterion_main!(benches);
