//! Criterion benches for attack building blocks: eviction-set discovery,
//! alignment, covert probing and memorygram sweeps.

use criterion::{criterion_group, criterion_main, Criterion};
use gpubox_attacks::covert::bits_from_bytes;
use gpubox_attacks::{
    classify_pages, discover_conflicts, transmit, ChannelParams, Locality, ScanConfig, Thresholds,
};
use gpubox_bench::AttackSetup;
use gpubox_sim::{GpuId, MultiGpuSystem, ProcessCtx, SystemConfig, VirtAddr};

fn bench_discovery(c: &mut Criterion) {
    c.bench_function("discover_conflicts_64_pages", |b| {
        b.iter(|| {
            let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
            let pid = sys.create_process(GpuId::new(0));
            let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
            let buf = ctx.malloc_on(GpuId::new(0), 64 * 4096).unwrap();
            let candidates: Vec<VirtAddr> = (1..64u64).map(|p| buf.offset(p * 4096)).collect();
            discover_conflicts(
                &mut ctx,
                buf,
                &candidates,
                &Thresholds::paper_defaults(),
                Locality::Local,
                &ScanConfig::default(),
            )
            .unwrap()
        })
    });

    c.bench_function("classify_pages_small", |b| {
        b.iter(|| {
            let mut sys = MultiGpuSystem::new(SystemConfig::small_test());
            let pid = sys.create_process(GpuId::new(0));
            let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
            let buf = ctx.malloc_on(GpuId::new(0), 96 * 4096).unwrap();
            classify_pages(
                &mut ctx,
                buf,
                96 * 4096,
                4096,
                128,
                16,
                &Thresholds::paper_defaults(),
                Locality::Local,
                &ScanConfig::classify_default(),
            )
            .unwrap()
        })
    });
}

fn bench_covert(c: &mut Criterion) {
    let mut setup = AttackSetup::prepare(2);
    let pairs = setup.aligned_pairs(4);
    let payload = bits_from_bytes(b"criterion covert payload");
    c.bench_function("covert_transmit_24B_4sets", |b| {
        b.iter(|| {
            transmit(
                &mut setup.sys,
                setup.trojan,
                setup.spy,
                &pairs,
                &payload,
                &ChannelParams::default(),
                setup.thresholds,
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_discovery, bench_covert
}
criterion_main!(benches);
