//! Criterion microbenches for the simulator's hot paths.
//!
//! Coverage:
//! - the full system access path, local and remote (`local_l2_access`,
//!   `remote_nvlink_access`);
//! - the raw cache layer: flat structure-of-arrays [`L2Cache`] vs. the
//!   original per-set `Vec<Option<u64>>` + boxed `SetPolicy` layout
//!   (`l2_flat_probe_hits`/`l2_flat_chase_evicts` vs. the
//!   `l2_seed_layout_*` baselines, ~2x each);
//! - the full seed access path, scalar and 4-agent contended
//!   (`system_access_seed_path*` vs. `local_l2_access*`) — the
//!   contended pair is the tentpole ≥3x comparison (measured 4.1–4.7x);
//! - batched probes: the allocating wrapper, the caller-buffer batch path
//!   and an equivalent loop of scalar accesses (`warp_batch_probe_16`,
//!   `warp_batch_into_16`, `warp_loop_scalar_16`);
//! - trial fan-out: serial vs. parallel [`TrialRunner`] over identical
//!   per-trial simulations (`trial_fanout_serial/parallel_8`).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use gpubox_attacks::TrialRunner;
use gpubox_sim::cache_reference::ReferenceCache;
use gpubox_sim::{CacheConfig, GpuId, L2Cache, MultiGpuSystem, PhysAddr, SystemConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The attack's two hot access shapes over a handful of target sets:
///
/// - *probe*: sweep the `ways` resident lines of a set (all hits) — the
///   covert channel / memorygram inner loop;
/// - *chase*: walk `ways + 1` conflicting lines of a set (every access
///   past the warm-up evicts) — the Alg. 1 discovery inner loop.
fn trace(cfg: &CacheConfig, len: usize, chase: bool) -> Vec<PhysAddr> {
    let span = cfg.line_size * cfg.num_sets();
    let depth = u64::from(cfg.ways) + u64::from(chase);
    let sets = 8u64;
    (0..len as u64)
        .map(|i| {
            let set = (i / depth) % sets;
            let k = i % depth;
            PhysAddr(set * cfg.line_size + k * span)
        })
        .collect()
}

fn bench_cache_layer(c: &mut Criterion) {
    let cfg = CacheConfig::p100_l2();
    for (name_flat, name_seed, chase) in [
        ("l2_flat_probe_hits", "l2_seed_layout_probe_hits", false),
        ("l2_flat_chase_evicts", "l2_seed_layout_chase_evicts", true),
    ] {
        let addrs = trace(&cfg, 8192, chase);

        let mut flat = L2Cache::new(&cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        c.bench_function(name_flat, |b| {
            let mut i = 0usize;
            b.iter(|| {
                let pa = addrs[i & 8191];
                i = i.wrapping_add(1);
                flat.access(pa, &mut rng)
            })
        });

        let mut seed_layout = ReferenceCache::new(&cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        c.bench_function(name_seed, |b| {
            let mut i = 0usize;
            b.iter(|| {
                let pa = addrs[i & 8191];
                i = i.wrapping_add(1);
                seed_layout.access(pa, &mut rng).is_hit()
            })
        });
    }
}

/// The seed's full single-GPU access path, reconstructed end to end: a
/// `HashMap` page-table walk per access, the per-set `Vec`/`SetPolicy`
/// cache with div/mod set math, the oracle's *second* set computation,
/// and the original pressure tracker that builds a fresh `HashSet` per
/// access. Conservative baseline: HBM backing-store reads and statistics
/// are omitted (both would only slow it further).
struct SeedAccessPath {
    cache: ReferenceCache,
    table: std::collections::HashMap<u64, u64>,
    recent: std::collections::VecDeque<(u64, u32)>,
    latency: gpubox_sim::LatencyModel,
    rng: ChaCha8Rng,
    page_size: u64,
    window: u64,
}

impl SeedAccessPath {
    fn new(cfg: &SystemConfig, pages: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut table = std::collections::HashMap::new();
        // Random frame placement, as the driver model does.
        let mut frames: Vec<u64> = (0..pages * 4).collect();
        use rand::seq::SliceRandom;
        frames.shuffle(&mut rng);
        for vpn in 0..pages {
            table.insert(vpn, frames[vpn as usize] * cfg.page_size);
        }
        SeedAccessPath {
            cache: ReferenceCache::new(&cfg.cache),
            table,
            recent: std::collections::VecDeque::new(),
            latency: gpubox_sim::LatencyModel::new(cfg.timing.clone()),
            rng,
            page_size: cfg.page_size,
            window: cfg.timing.contention_window,
        }
    }

    fn access(&mut self, va: u64, now: u64, agent: u32) -> u32 {
        // Translate: HashMap lookup per access (the seed had no TLB).
        let vpn = va / self.page_size;
        let off = va % self.page_size;
        let pa = PhysAddr(self.table[&vpn] + off);
        // Cache lookup (first set computation inside).
        let hit = self.cache.access(pa, &mut self.rng).is_hit();
        // Pressure query: the seed built a HashSet every access.
        let cutoff = now.saturating_sub(self.window);
        let mut others: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for &(t, a) in self.recent.iter().rev() {
            if t < cutoff {
                break;
            }
            if a != agent {
                others.insert(a);
            }
        }
        let pressure = others.len() as u32;
        self.recent.push_back((now, agent));
        while matches!(self.recent.front(), Some(&(t, _)) if t < cutoff) {
            self.recent.pop_front();
        }
        let latency =
            self.latency
                .access_latency(gpubox_sim::Route::local(), hit, pressure, &mut self.rng);
        // Oracle bookkeeping: the seed computed the set a second time.
        let line = pa.0 / self.cache.line_size();
        black_box(line % self.cache.num_sets());
        latency
    }
}

fn bench_access_path(c: &mut Criterion) {
    // Seed-path baseline over the same access pattern as local_l2_access.
    let cfg = SystemConfig::dgx1();
    let mut seed_path = SeedAccessPath::new(&cfg, (1 << 20) / cfg.page_size);
    let mut ts = 0u64;
    c.bench_function("system_access_seed_path", |b| {
        b.iter(|| {
            ts += 300;
            seed_path.access((ts % 8192) * 128 % (1 << 20), ts, 0)
        })
    });

    // The contended covert-channel regime: four agents interleave on one
    // GPU. The seed pays a HashSet build (alloc + hashing) per access;
    // the flat path scans a four-entry table. Noiseless config so the
    // comparison isolates data-structure cost, not Box–Muller jitter.
    let ncfg = SystemConfig::dgx1().noiseless();
    let mut seed_path_c = SeedAccessPath::new(&ncfg, (1 << 20) / ncfg.page_size);
    c.bench_function("system_access_seed_path_contended4", |b| {
        b.iter(|| {
            ts += 300;
            seed_path_c.access((ts % 8192) * 128 % (1 << 20), ts, (ts / 300 % 4) as u32)
        })
    });

    let mut nsys = MultiGpuSystem::new(SystemConfig::dgx1().noiseless());
    let npid = nsys.create_process(GpuId::new(0));
    let nagents = [
        nsys.default_agent(npid),
        nsys.new_agent(),
        nsys.new_agent(),
        nsys.new_agent(),
    ];
    let nbuf = nsys.malloc_on(npid, GpuId::new(0), 1 << 20).unwrap();
    c.bench_function("local_l2_access_contended4", |b| {
        b.iter(|| {
            ts += 300;
            nsys.access(
                npid,
                nagents[(ts / 300 % 4) as usize],
                nbuf.offset((ts % 8192) * 128 % (1 << 20)),
                ts,
                None,
            )
            .unwrap()
        })
    });

    let mut sys = MultiGpuSystem::new(SystemConfig::dgx1());
    let pid = sys.create_process(GpuId::new(0));
    let agent = sys.default_agent(pid);
    let buf = sys.malloc_on(pid, GpuId::new(0), 1 << 20).unwrap();
    let mut t = 0u64;
    c.bench_function("local_l2_access", |b| {
        b.iter(|| {
            t += 300;
            sys.access(
                pid,
                agent,
                buf.offset((t % 8192) * 128 % (1 << 20)),
                t,
                None,
            )
            .unwrap()
        })
    });

    let spy = sys.create_process(GpuId::new(1));
    sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
    let rbuf = sys.malloc_on(spy, GpuId::new(0), 1 << 20).unwrap();
    let sagent = sys.default_agent(spy);
    c.bench_function("remote_nvlink_access", |b| {
        b.iter(|| {
            t += 700;
            sys.access(
                spy,
                sagent,
                rbuf.offset((t % 8192) * 128 % (1 << 20)),
                t,
                None,
            )
            .unwrap()
        })
    });

    let vas: Vec<_> = (0..16u64).map(|i| rbuf.offset(i * 128)).collect();
    c.bench_function("warp_batch_probe_16", |b| {
        b.iter(|| {
            t += 1000;
            sys.access_batch(spy, sagent, &vas, t).unwrap()
        })
    });

    // The true batched path: caller-owned latency buffer, page translated
    // once, no per-access allocation.
    let mut lat_buf: Vec<u32> = Vec::with_capacity(16);
    c.bench_function("warp_batch_into_16", |b| {
        b.iter(|| {
            t += 1000;
            lat_buf.clear();
            sys.access_batch_into(spy, sagent, &vas, t, &mut lat_buf)
                .unwrap()
        })
    });

    // Baseline: the same 16 lines as scalar accesses (what the batch API
    // replaces).
    c.bench_function("warp_loop_scalar_16", |b| {
        b.iter(|| {
            t += 1000;
            let mut hits = 0u32;
            for (i, &va) in vas.iter().enumerate() {
                let acc = sys.access(spy, sagent, va, t + 24 * i as u64, None).unwrap();
                hits += u32::from(acc.oracle.hit);
            }
            hits
        })
    });
}

/// One bounded trial: boot a small machine, hammer a buffer, return a
/// fingerprint of the simulation state.
fn fanout_trial(seed: u64) -> u64 {
    let mut sys = MultiGpuSystem::new(SystemConfig::small_test().with_seed(seed));
    let pid = sys.create_process(GpuId::new(0));
    let agent = sys.default_agent(pid);
    let buf = sys.malloc_on(pid, GpuId::new(0), 256 * 1024).unwrap();
    let mut acc = 0u64;
    for i in 0..4096u64 {
        let a = sys
            .access(pid, agent, buf.offset((i * 128) % (256 * 1024)), i * 300, None)
            .unwrap();
        acc = acc.wrapping_mul(31).wrapping_add(u64::from(a.latency));
    }
    acc
}

fn bench_trial_fanout(c: &mut Criterion) {
    // Sanity: parallel and serial fan-out must agree bit-for-bit.
    let par = TrialRunner::new(7).run(8, |t| fanout_trial(t.seed));
    let ser = TrialRunner::serial(7).run(8, |t| fanout_trial(t.seed));
    assert_eq!(par, ser, "parallel fan-out must be bit-identical");

    c.bench_function("trial_fanout_serial_8", |b| {
        b.iter(|| TrialRunner::serial(7).run(8, |t| fanout_trial(t.seed)))
    });
    c.bench_function("trial_fanout_parallel_8", |b| {
        b.iter(|| TrialRunner::new(7).run(8, |t| fanout_trial(t.seed)))
    });
}

fn bench_system_boot(c: &mut Criterion) {
    c.bench_function("boot_dgx1", |b| {
        b.iter_batched(
            SystemConfig::dgx1,
            MultiGpuSystem::new,
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_cache_layer,
    bench_access_path,
    bench_trial_fanout,
    bench_system_boot
);
criterion_main!(benches);
