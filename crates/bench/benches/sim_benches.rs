//! Criterion microbenches for the simulator's hot paths.
//!
//! Coverage:
//! - the full system access path, local and remote (`local_l2_access`,
//!   `remote_nvlink_access`);
//! - the raw cache layer: flat structure-of-arrays [`L2Cache`] vs. the
//!   original per-set `Vec<Option<u64>>` + boxed `SetPolicy` layout
//!   (`l2_flat_probe_hits`/`l2_flat_chase_evicts` vs. the
//!   `l2_seed_layout_*` baselines, ~2x each);
//! - the full seed access path, scalar and 4-agent contended
//!   (`system_access_seed_path*` vs. `local_l2_access*`) — the
//!   contended pair is the tentpole ≥3x comparison (measured 4.1–4.7x);
//! - batched probes: the allocating wrapper, the caller-buffer batch path
//!   and an equivalent loop of scalar accesses (`warp_batch_probe_16`,
//!   `warp_batch_into_16`, `warp_loop_scalar_16`);
//! - trial fan-out: serial vs. parallel [`TrialRunner`] over identical
//!   per-trial simulations (`trial_fanout_serial/parallel_8`);
//! - the engine layer, PR 2's tentpole: engine-overhead microbench
//!   (256 engine-stepped loads vs. the same loads issued raw:
//!   `engine_steps_256_loads` / `pr1_engine_steps_256_loads` /
//!   `raw_access_256_loads`) and the end-to-end covert channel
//!   (`covert_transmit_e2e` vs. `covert_transmit_pr1_rung`), where the
//!   baseline rung is the PR 1 stack faithfully reconstructed in
//!   [`pr1`]: the allocating op protocol (cloned probe lists, owned
//!   latency `Vec`s), the O(n) min-scan scheduler, and the one-entry
//!   TLB (`set_tlb_entries(1)`). Both transmissions are asserted
//!   bit-identical before timing — the rungs differ in host cost only;
//! - the fabric layer, PR 3's tentpole: before timing, a fabric-off
//!   system must reproduce the golden pre-fabric access-path fingerprint
//!   bit-for-bit ([`PRE_FABRIC_FINGERPRINT`]); then the per-access cost
//!   of the timed link model on 1-hop and 2-hop remote routes
//!   (`remote_nvlink_access_fabric_on`, `remote_2hop_access_fabric_on` /
//!   `_off`);
//! - the telemetry layer: full tracing on the e2e covert channel must be
//!   bit-invisible and within its overhead budget before
//!   `covert_transmit_e2e_traced` is timed (`bench_trace_overhead`);
//! - the monitor layer, PR 10's tentpole: the streaming covert-channel
//!   detector fed per-window stats snapshots must be outcome-invisible
//!   and within its overhead budget on a busy windowed run before
//!   `monitor_windowed_300k` is timed (`bench_monitor_overhead`).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use gpubox_attacks::covert::{decode_trace, stripe_bits, unstripe_bits, ProbeSample};
use gpubox_attacks::{
    align_classes, classify_pages, classify_pages_fast, paired_sets, AlignmentConfig,
    ChannelParams, Locality, ScanConfig, SetPair, Thresholds, TrialRunner,
};
use gpubox_sim::{
    Agent, CacheConfig, Engine, FabricConfig, FleetConfig, FleetRunner, GpuId, L2Cache,
    MultiGpuSystem, Op, OpResult, Pack, PhysAddr, ProbeStage, ProcessCtx, ProcessId, SystemConfig,
    Topology, VirtAddr,
};
use gpubox_sim::cache_reference::ReferenceCache;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The attack's two hot access shapes over a handful of target sets:
///
/// - *probe*: sweep the `ways` resident lines of a set (all hits) — the
///   covert channel / memorygram inner loop;
/// - *chase*: walk `ways + 1` conflicting lines of a set (every access
///   past the warm-up evicts) — the Alg. 1 discovery inner loop.
fn trace(cfg: &CacheConfig, len: usize, chase: bool) -> Vec<PhysAddr> {
    let span = cfg.line_size * cfg.num_sets();
    let depth = u64::from(cfg.ways) + u64::from(chase);
    let sets = 8u64;
    (0..len as u64)
        .map(|i| {
            let set = (i / depth) % sets;
            let k = i % depth;
            PhysAddr(set * cfg.line_size + k * span)
        })
        .collect()
}

fn bench_cache_layer(c: &mut Criterion) {
    let cfg = CacheConfig::p100_l2();
    for (name_flat, name_seed, chase) in [
        ("l2_flat_probe_hits", "l2_seed_layout_probe_hits", false),
        ("l2_flat_chase_evicts", "l2_seed_layout_chase_evicts", true),
    ] {
        let addrs = trace(&cfg, 8192, chase);

        let mut flat = L2Cache::new(&cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        c.bench_function(name_flat, |b| {
            let mut i = 0usize;
            b.iter(|| {
                let pa = addrs[i & 8191];
                i = i.wrapping_add(1);
                flat.access(pa, &mut rng)
            })
        });

        let mut seed_layout = ReferenceCache::new(&cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        c.bench_function(name_seed, |b| {
            let mut i = 0usize;
            b.iter(|| {
                let pa = addrs[i & 8191];
                i = i.wrapping_add(1);
                seed_layout.access(pa, &mut rng).is_hit()
            })
        });
    }
}

/// The seed's full single-GPU access path, reconstructed end to end: a
/// `HashMap` page-table walk per access, the per-set `Vec`/`SetPolicy`
/// cache with div/mod set math, the oracle's *second* set computation,
/// and the original pressure tracker that builds a fresh `HashSet` per
/// access. Conservative baseline: HBM backing-store reads and statistics
/// are omitted (both would only slow it further).
struct SeedAccessPath {
    cache: ReferenceCache,
    table: std::collections::HashMap<u64, u64>,
    recent: std::collections::VecDeque<(u64, u32)>,
    latency: gpubox_sim::LatencyModel,
    rng: ChaCha8Rng,
    page_size: u64,
    window: u64,
}

impl SeedAccessPath {
    fn new(cfg: &SystemConfig, pages: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut table = std::collections::HashMap::new();
        // Random frame placement, as the driver model does.
        let mut frames: Vec<u64> = (0..pages * 4).collect();
        use rand::seq::SliceRandom;
        frames.shuffle(&mut rng);
        for vpn in 0..pages {
            table.insert(vpn, frames[vpn as usize] * cfg.page_size);
        }
        SeedAccessPath {
            cache: ReferenceCache::new(&cfg.cache),
            table,
            recent: std::collections::VecDeque::new(),
            latency: gpubox_sim::LatencyModel::new(cfg.timing.clone()),
            rng,
            page_size: cfg.page_size,
            window: cfg.timing.contention_window,
        }
    }

    fn access(&mut self, va: u64, now: u64, agent: u32) -> u32 {
        // Translate: HashMap lookup per access (the seed had no TLB).
        let vpn = va / self.page_size;
        let off = va % self.page_size;
        let pa = PhysAddr(self.table[&vpn] + off);
        // Cache lookup (first set computation inside).
        let hit = self.cache.access(pa, &mut self.rng).is_hit();
        // Pressure query: the seed built a HashSet every access.
        let cutoff = now.saturating_sub(self.window);
        let mut others: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for &(t, a) in self.recent.iter().rev() {
            if t < cutoff {
                break;
            }
            if a != agent {
                others.insert(a);
            }
        }
        let pressure = others.len() as u32;
        self.recent.push_back((now, agent));
        while matches!(self.recent.front(), Some(&(t, _)) if t < cutoff) {
            self.recent.pop_front();
        }
        let latency =
            self.latency
                .access_latency(gpubox_sim::Route::local(), hit, pressure, &mut self.rng);
        // Oracle bookkeeping: the seed computed the set a second time.
        let line = pa.0 / self.cache.line_size();
        black_box(line % self.cache.num_sets());
        latency
    }
}

fn bench_access_path(c: &mut Criterion) {
    // Seed-path baseline over the same access pattern as local_l2_access.
    let cfg = SystemConfig::dgx1();
    let mut seed_path = SeedAccessPath::new(&cfg, (1 << 20) / cfg.page_size);
    let mut ts = 0u64;
    c.bench_function("system_access_seed_path", |b| {
        b.iter(|| {
            ts += 300;
            seed_path.access((ts % 8192) * 128 % (1 << 20), ts, 0)
        })
    });

    // The contended covert-channel regime: four agents interleave on one
    // GPU. The seed pays a HashSet build (alloc + hashing) per access;
    // the flat path scans a four-entry table. Noiseless config so the
    // comparison isolates data-structure cost, not Box–Muller jitter.
    let ncfg = SystemConfig::dgx1().noiseless();
    let mut seed_path_c = SeedAccessPath::new(&ncfg, (1 << 20) / ncfg.page_size);
    c.bench_function("system_access_seed_path_contended4", |b| {
        b.iter(|| {
            ts += 300;
            seed_path_c.access((ts % 8192) * 128 % (1 << 20), ts, (ts / 300 % 4) as u32)
        })
    });

    let mut nsys = MultiGpuSystem::new(SystemConfig::dgx1().noiseless());
    let npid = nsys.create_process(GpuId::new(0));
    let nagents = [
        nsys.default_agent(npid),
        nsys.new_agent(),
        nsys.new_agent(),
        nsys.new_agent(),
    ];
    let nbuf = nsys.malloc_on(npid, GpuId::new(0), 1 << 20).unwrap();
    c.bench_function("local_l2_access_contended4", |b| {
        b.iter(|| {
            ts += 300;
            nsys.access(
                npid,
                nagents[(ts / 300 % 4) as usize],
                nbuf.offset((ts % 8192) * 128 % (1 << 20)),
                ts,
                None,
            )
            .unwrap()
        })
    });

    let mut sys = MultiGpuSystem::new(SystemConfig::dgx1());
    let pid = sys.create_process(GpuId::new(0));
    let agent = sys.default_agent(pid);
    let buf = sys.malloc_on(pid, GpuId::new(0), 1 << 20).unwrap();
    let mut t = 0u64;
    c.bench_function("local_l2_access", |b| {
        b.iter(|| {
            t += 300;
            sys.access(
                pid,
                agent,
                buf.offset((t % 8192) * 128 % (1 << 20)),
                t,
                None,
            )
            .unwrap()
        })
    });

    let spy = sys.create_process(GpuId::new(1));
    sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
    let rbuf = sys.malloc_on(spy, GpuId::new(0), 1 << 20).unwrap();
    let sagent = sys.default_agent(spy);
    c.bench_function("remote_nvlink_access", |b| {
        b.iter(|| {
            t += 700;
            sys.access(
                spy,
                sagent,
                rbuf.offset((t % 8192) * 128 % (1 << 20)),
                t,
                None,
            )
            .unwrap()
        })
    });

    let vas: Vec<_> = (0..16u64).map(|i| rbuf.offset(i * 128)).collect();
    c.bench_function("warp_batch_probe_16", |b| {
        b.iter(|| {
            t += 1000;
            sys.access_batch(spy, sagent, &vas, t).unwrap()
        })
    });

    // The true batched path: caller-owned latency buffer, page translated
    // once, no per-access allocation.
    let mut lat_buf: Vec<u32> = Vec::with_capacity(16);
    c.bench_function("warp_batch_into_16", |b| {
        b.iter(|| {
            t += 1000;
            lat_buf.clear();
            sys.access_batch_into(spy, sagent, &vas, t, &mut lat_buf)
                .unwrap()
        })
    });

    // Baseline: the same 16 lines as scalar accesses (what the batch API
    // replaces).
    c.bench_function("warp_loop_scalar_16", |b| {
        b.iter(|| {
            t += 1000;
            let mut hits = 0u32;
            for (i, &va) in vas.iter().enumerate() {
                let acc = sys.access(spy, sagent, va, t + 24 * i as u64, None).unwrap();
                hits += u32::from(acc.oracle.hit);
            }
            hits
        })
    });
}

/// One bounded trial: boot a small machine, hammer a buffer, return a
/// fingerprint of the simulation state.
fn fanout_trial(seed: u64) -> u64 {
    let mut sys = MultiGpuSystem::new(SystemConfig::small_test().with_seed(seed));
    let pid = sys.create_process(GpuId::new(0));
    let agent = sys.default_agent(pid);
    let buf = sys.malloc_on(pid, GpuId::new(0), 256 * 1024).unwrap();
    let mut acc = 0u64;
    for i in 0..4096u64 {
        let a = sys
            .access(pid, agent, buf.offset((i * 128) % (256 * 1024)), i * 300, None)
            .unwrap();
        acc = acc.wrapping_mul(31).wrapping_add(u64::from(a.latency));
    }
    acc
}

fn bench_trial_fanout(c: &mut Criterion) {
    // Sanity: parallel and serial fan-out must agree bit-for-bit.
    let par = TrialRunner::new(7).run(8, |t| fanout_trial(t.seed));
    let ser = TrialRunner::serial(7).run(8, |t| fanout_trial(t.seed));
    assert_eq!(par, ser, "parallel fan-out must be bit-identical");

    c.bench_function("trial_fanout_serial_8", |b| {
        b.iter(|| TrialRunner::serial(7).run(8, |t| fanout_trial(t.seed)))
    });
    c.bench_function("trial_fanout_parallel_8", |b| {
        b.iter(|| TrialRunner::new(7).run(8, |t| fanout_trial(t.seed)))
    });
}

/// Faithful reconstruction of the **PR 1 engine layer** — the baseline
/// rung for the PR 2 engine benches, kept alive here the same way
/// [`SeedAccessPath`] preserves the seed's access path:
///
/// - `Op::LoadBatch` carries an owned `Vec<VirtAddr>` which agents build
///   by cloning their line list per probe;
/// - every `Load`/`Store` result allocates `vec![latency]`, every batch
///   goes through the allocating [`MultiGpuSystem::access_batch`] wrapper
///   and moves the latency `Vec` into an owned `OpResult`;
/// - the next agent is found with an O(n) filtered min-scan per step.
///
/// The e2e rung additionally configures the live system with
/// `set_tlb_entries(1)`, PR 1's one-entry per-process TLB (observable
/// results are TLB-size-invariant, so the reconstruction stays
/// bit-identical to the current engine — asserted before timing).
mod pr1 {
    use super::*;

    pub enum Pr1Op {
        Load(VirtAddr),
        LoadBatch(Vec<VirtAddr>),
        Compute(u64),
        Done,
    }

    pub struct Pr1OpResult {
        pub started_at: u64,
        pub duration: u64,
        pub latencies: Vec<u32>,
    }

    pub trait Pr1Agent {
        fn next_op(&mut self, now: u64) -> Pr1Op;
        fn on_result(&mut self, res: &Pr1OpResult);
        fn process(&self) -> ProcessId;
    }

    pub struct Pr1Engine<'a> {
        sys: &'a mut MultiGpuSystem,
        slots: Vec<(Box<dyn Pr1Agent>, gpubox_sim::AgentId, u64, bool)>,
    }

    impl<'a> Pr1Engine<'a> {
        pub fn new(sys: &'a mut MultiGpuSystem) -> Self {
            sys.reset_timing_state();
            Pr1Engine {
                sys,
                slots: Vec::new(),
            }
        }

        pub fn add_agent(&mut self, agent: Box<dyn Pr1Agent>, start: u64) {
            let id = self.sys.new_agent();
            self.slots.push((agent, id, start, false));
        }

        pub fn run(&mut self, deadline: u64) -> u64 {
            loop {
                // PR 1's scheduler: filtered O(n) min-scan every step.
                let next = self
                    .slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| !s.3)
                    .min_by_key(|(_, s)| s.2)
                    .map(|(i, _)| i);
                let Some(i) = next else { break };
                if self.slots[i].2 >= deadline {
                    break;
                }
                let now = self.slots[i].2;
                let op = self.slots[i].0.next_op(now);
                match op {
                    Pr1Op::Done => self.slots[i].3 = true,
                    Pr1Op::Compute(c) => {
                        let res = Pr1OpResult {
                            started_at: now,
                            duration: c,
                            latencies: Vec::new(),
                        };
                        self.slots[i].2 += c;
                        self.slots[i].0.on_result(&res);
                    }
                    Pr1Op::Load(va) => {
                        let pid = self.slots[i].0.process();
                        let acc = self.sys.access(pid, self.slots[i].1, va, now, None).unwrap();
                        let res = Pr1OpResult {
                            started_at: now,
                            duration: u64::from(acc.latency),
                            latencies: vec![acc.latency],
                        };
                        self.slots[i].2 += u64::from(acc.latency);
                        self.slots[i].0.on_result(&res);
                    }
                    Pr1Op::LoadBatch(vas) => {
                        let pid = self.slots[i].0.process();
                        let b = self
                            .sys
                            .access_batch(pid, self.slots[i].1, &vas, now)
                            .unwrap();
                        let res = Pr1OpResult {
                            started_at: now,
                            duration: b.duration,
                            latencies: b.latencies,
                        };
                        self.slots[i].2 += b.duration;
                        self.slots[i].0.on_result(&res);
                    }
                }
            }
            self.slots.iter().map(|s| s.2).max().unwrap_or(0)
        }
    }

    /// PR 1 trojan: clones its eviction-set line list for every prime.
    pub struct Pr1Trojan {
        pub pid: ProcessId,
        pub lines: Vec<VirtAddr>,
        pub frame: Vec<u8>,
        pub slot_cycles: u64,
        pub start: Option<u64>,
        pub prime_estimate: u64,
        pub bit_idx: usize,
    }

    impl Pr1Agent for Pr1Trojan {
        fn next_op(&mut self, now: u64) -> Pr1Op {
            let start = *self.start.get_or_insert(now);
            if self.bit_idx >= self.frame.len() {
                return Pr1Op::Done;
            }
            let slot_end = start + (self.bit_idx as u64 + 1) * self.slot_cycles;
            if now >= slot_end {
                self.bit_idx += 1;
                return self.next_op(now);
            }
            let remaining = slot_end - now;
            if self.frame[self.bit_idx] == 1 {
                if remaining < self.prime_estimate {
                    Pr1Op::Compute(remaining)
                } else {
                    Pr1Op::LoadBatch(self.lines.clone())
                }
            } else {
                Pr1Op::Compute(remaining.min(self.prime_estimate))
            }
        }

        fn on_result(&mut self, res: &Pr1OpResult) {
            if !res.latencies.is_empty() {
                self.prime_estimate = (self.prime_estimate + res.duration) / 2;
            }
        }

        fn process(&self) -> ProcessId {
            self.pid
        }
    }

    /// PR 1 spy: clones its line list per probe, owned-latency results.
    pub struct Pr1Spy {
        pub pid: ProcessId,
        pub lines: Vec<VirtAddr>,
        pub thresholds: Thresholds,
        pub stop_after: u64,
        pub samples: std::rc::Rc<std::cell::RefCell<Vec<ProbeSample>>>,
    }

    impl Pr1Agent for Pr1Spy {
        fn next_op(&mut self, now: u64) -> Pr1Op {
            if now >= self.stop_after {
                return Pr1Op::Done;
            }
            Pr1Op::LoadBatch(self.lines.clone())
        }

        fn on_result(&mut self, res: &Pr1OpResult) {
            if res.latencies.is_empty() {
                return;
            }
            let misses = self.thresholds.count_remote_misses(&res.latencies) as u32;
            let mean = res.latencies.iter().map(|&l| u64::from(l)).sum::<u64>()
                / res.latencies.len() as u64;
            self.samples.borrow_mut().push(ProbeSample {
                at: res.started_at,
                misses,
                lines: res.latencies.len() as u32,
                mean_latency: mean as u32,
            });
        }

        fn process(&self) -> ProcessId {
            self.pid
        }
    }

    /// `covert::transmit` re-expressed over the PR 1 engine (same framing,
    /// agent logic, decode path and spy gap = 0 as the live
    /// `ChannelParams::default()`).
    pub fn transmit(
        sys: &mut MultiGpuSystem,
        trojan_pid: ProcessId,
        spy_pid: ProcessId,
        pairs: &[SetPair],
        payload: &[u8],
        params: &ChannelParams,
        thresholds: Thresholds,
    ) -> Vec<u8> {
        let k = pairs.len();
        let stripes = stripe_bits(payload, k);
        let max_frame = stripes.iter().map(Vec::len).max().unwrap_or(0) + params.preamble_bits;
        let listen = (max_frame as u64 + 4) * params.slot_cycles;
        let mut eng = Pr1Engine::new(sys);
        let mut traces = Vec::with_capacity(k);
        for (i, pair) in pairs.iter().enumerate() {
            let frame = params.frame(&stripes[i]);
            let trojan = Pr1Trojan {
                pid: trojan_pid,
                lines: pair.trojan.lines().to_vec(),
                frame,
                slot_cycles: params.slot_cycles,
                start: None,
                prime_estimate: 700,
                bit_idx: 0,
            };
            let samples = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
            let spy = Pr1Spy {
                pid: spy_pid,
                lines: pair.spy.lines().to_vec(),
                thresholds,
                stop_after: listen,
                samples: std::rc::Rc::clone(&samples),
            };
            traces.push(samples);
            eng.add_agent(Box::new(spy), 0);
            eng.add_agent(Box::new(trojan), params.slot_cycles / 2 + 37 * i as u64);
        }
        eng.run(listen + 16 * params.slot_cycles);
        let decoded: Vec<Vec<u8>> = traces
            .iter()
            .enumerate()
            .map(|(i, t)| decode_trace(&t.borrow(), params, stripes[i].len()).payload)
            .collect();
        unstripe_bits(&decoded, payload.len())
    }
}

/// Builds the covert-channel fixture (trojan GPU0, spy GPU1, aligned set
/// pairs) on a small noiseless box — the same preparation as the
/// `gpubox_attacks::covert` unit tests, reproducible per seed.
fn channel_fixture(seed: u64) -> (MultiGpuSystem, ProcessId, ProcessId, Vec<SetPair>) {
    let mut sys = MultiGpuSystem::new(SystemConfig::small_test().with_seed(seed).noiseless());
    let thr = Thresholds::paper_defaults();
    let trojan = sys.create_process(GpuId::new(0));
    let spy = sys.create_process(GpuId::new(1));
    sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
    let bytes = 96 * 4096u64;
    let tclasses = {
        let mut ctx = ProcessCtx::new(&mut sys, trojan, 0);
        let b = ctx.malloc_on(GpuId::new(0), bytes).unwrap();
        classify_pages(&mut ctx, b, bytes, 4096, 128, 16, &thr, Locality::Local, &ScanConfig::classify_default()).unwrap()
    };
    let sclasses = {
        let mut ctx = ProcessCtx::new(&mut sys, spy, 0);
        let b = ctx.malloc_on(GpuId::new(0), bytes).unwrap();
        classify_pages(&mut ctx, b, bytes, 4096, 128, 16, &thr, Locality::Remote, &ScanConfig::classify_default()).unwrap()
    };
    let matches = align_classes(
        &mut sys,
        trojan,
        &tclasses,
        spy,
        &sclasses,
        16,
        &AlignmentConfig::default(),
    )
    .unwrap();
    let pairs = paired_sets(&tclasses, &sclasses, &matches, 4, 16)
        .into_iter()
        .map(|(t, s)| SetPair { trojan: t, spy: s })
        .collect();
    (sys, trojan, spy, pairs)
}

/// End-to-end `covert::transmit` on the zero-alloc engine vs. the
/// reconstructed PR 1 rung (allocating engine + one-entry TLB).
fn bench_covert_e2e(c: &mut Criterion) {
    let payload = gpubox_attacks::covert::bits_from_bytes(b"PR2 rung");
    let params = ChannelParams::default();
    let thr = Thresholds::paper_defaults();

    // Sanity before timing: both rungs must decode identical bits from
    // identically seeded fixtures — the rungs differ in host cost only.
    {
        let (mut sys_new, t, s, pairs) = channel_fixture(1234);
        let new_rx =
            gpubox_attacks::transmit(&mut sys_new, t, s, &pairs, &payload, &params, thr)
                .unwrap()
                .received;
        let (mut sys_old, t, s, pairs) = channel_fixture(1234);
        sys_old.set_tlb_entries(1);
        let old_rx = pr1::transmit(&mut sys_old, t, s, &pairs, &payload, &params, thr);
        assert_eq!(
            new_rx, old_rx,
            "PR 1 reconstruction must be bit-identical to the live engine"
        );
    }

    let (mut sys, trojan, spy, pairs) = channel_fixture(77);
    c.bench_function("covert_transmit_e2e", |b| {
        b.iter(|| {
            gpubox_attacks::transmit(&mut sys, trojan, spy, &pairs, &payload, &params, thr)
                .unwrap()
                .bit_errors
        })
    });

    let (mut sys, trojan, spy, pairs) = channel_fixture(77);
    sys.set_tlb_entries(1);
    c.bench_function("covert_transmit_pr1_rung", |b| {
        b.iter(|| pr1::transmit(&mut sys, trojan, spy, &pairs, &payload, &params, thr).len())
    });
}

/// Telemetry rung: full tracing on the end-to-end covert channel.
///
/// Two gates run before timing (they hold in CI's `--test` smoke mode):
///
/// - **bit-invisibility** — the traced transmission decodes the exact
///   bit stream of the untraced one on an identically seeded fixture
///   (hooks consume no RNG and add no cycles);
/// - **overhead budget** — min-of-N wall clock of the traced run stays
///   within the overhead budget of the untraced run
///   (`covert_transmit_e2e`'s workload),
///   the telemetry module's stated budget.
///
/// The `covert_transmit_e2e_traced` criterion bench then tracks the
/// traced cost in the trend next to its untraced sibling above.
fn bench_trace_overhead(c: &mut Criterion) {
    let payload = gpubox_attacks::covert::bits_from_bytes(b"PR2 rung");
    let params = ChannelParams::default();
    let thr = Thresholds::paper_defaults();

    // Bit-invisibility gate.
    let run = |tracing: bool| {
        let (mut sys, t, s, pairs) = channel_fixture(1234);
        if tracing {
            sys.enable_tracing(1 << 16);
        }
        gpubox_attacks::transmit(&mut sys, t, s, &pairs, &payload, &params, thr)
            .unwrap()
            .received
    };
    assert_eq!(
        run(false),
        run(true),
        "tracing must be bit-invisible to the covert channel"
    );

    // Overhead gate: interleaved min-of-N so machine noise hits both
    // sides alike. The ring wraps (capacity 64Ki) — the record path
    // costs the same wrapped or not, which is what's being measured.
    let (mut sys_off, t_off, s_off, pairs_off) = channel_fixture(77);
    let (mut sys_on, t_on, s_on, pairs_on) = channel_fixture(77);
    sys_on.enable_tracing(1 << 16);
    let mut best_off = u128::MAX;
    let mut best_on = u128::MAX;
    for _ in 0..7 {
        let t0 = std::time::Instant::now();
        black_box(
            gpubox_attacks::transmit(&mut sys_off, t_off, s_off, &pairs_off, &payload, &params, thr)
                .unwrap()
                .bit_errors,
        );
        best_off = best_off.min(t0.elapsed().as_nanos());
        let t0 = std::time::Instant::now();
        black_box(
            gpubox_attacks::transmit(&mut sys_on, t_on, s_on, &pairs_on, &payload, &params, thr)
                .unwrap()
                .bit_errors,
        );
        best_on = best_on.min(t0.elapsed().as_nanos());
    }
    let ratio = best_on as f64 / best_off as f64;
    // Guardrail, not a precision measurement: the true overhead sits
    // around 1.10–1.15x, but on 1-CPU/shared runners the interleaved
    // min-of-7 still jitters by ~0.1x with binary layout and allocator
    // state (observed 0.98–1.23x across reruns of identical code), so
    // the assert budget leaves headroom and the criterion trend below
    // is the number to watch.
    println!("trace overhead on covert_transmit_e2e: {ratio:.3}x (budget 1.25x)");
    assert!(
        ratio <= 1.25,
        "full tracing costs {ratio:.3}x on covert_transmit_e2e — over budget"
    );

    c.bench_function("covert_transmit_e2e_traced", |b| {
        b.iter(|| {
            gpubox_attacks::transmit(&mut sys_on, t_on, s_on, &pairs_on, &payload, &params, thr)
                .unwrap()
                .bit_errors
        })
    });
}

/// Issues `n` dependent loads over a fixed intra-page line list, then
/// finishes — for measuring pure engine-step overhead.
struct FixedLoads {
    pid: ProcessId,
    lines: Vec<VirtAddr>,
    remaining: usize,
}

impl Agent for FixedLoads {
    fn next_op(&mut self, _now: u64, _stage: &mut ProbeStage) -> Op {
        if self.remaining == 0 {
            return Op::Done;
        }
        self.remaining -= 1;
        Op::Load(self.lines[self.remaining % self.lines.len()])
    }
    fn on_result(&mut self, _res: &OpResult<'_>) {}
    fn process(&self) -> ProcessId {
        self.pid
    }
}

struct Pr1FixedLoads {
    pid: ProcessId,
    lines: Vec<VirtAddr>,
    remaining: usize,
}

impl pr1::Pr1Agent for Pr1FixedLoads {
    fn next_op(&mut self, _now: u64) -> pr1::Pr1Op {
        if self.remaining == 0 {
            return pr1::Pr1Op::Done;
        }
        self.remaining -= 1;
        pr1::Pr1Op::Load(self.lines[self.remaining % self.lines.len()])
    }
    fn on_result(&mut self, _res: &pr1::Pr1OpResult) {}
    fn process(&self) -> ProcessId {
        self.pid
    }
}

/// Engine-overhead microbench: the same 256 scalar loads stepped through
/// the zero-alloc engine, the PR 1 engine and issued raw (the floor).
/// All three share one system/TLB, so the deltas are engine-layer only.
fn bench_engine_overhead(c: &mut Criterion) {
    let mut sys = MultiGpuSystem::new(SystemConfig::dgx1().noiseless());
    let pid = sys.create_process(GpuId::new(0));
    let buf = sys.malloc_on(pid, GpuId::new(0), 64 * 1024).unwrap();
    let lines: Vec<VirtAddr> = (0..16).map(|i| buf.offset(i * 128)).collect();

    c.bench_function("engine_steps_256_loads", |b| {
        b.iter(|| {
            let mut eng = Engine::new(&mut sys);
            eng.add_agent(
                Box::new(FixedLoads {
                    pid,
                    lines: lines.clone(),
                    remaining: 256,
                }),
                0,
            );
            eng.run(u64::MAX).unwrap()
        })
    });

    c.bench_function("pr1_engine_steps_256_loads", |b| {
        b.iter(|| {
            let mut eng = pr1::Pr1Engine::new(&mut sys);
            eng.add_agent(
                Box::new(Pr1FixedLoads {
                    pid,
                    lines: lines.clone(),
                    remaining: 256,
                }),
                0,
            );
            eng.run(u64::MAX)
        })
    });

    let agent = sys.default_agent(pid);
    let mut t = 0u64;
    c.bench_function("raw_access_256_loads", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in 0..256u64 {
                t += 300;
                let a = sys
                    .access(pid, agent, lines[(k % 16) as usize], t, None)
                    .unwrap();
                acc += u64::from(a.latency);
            }
            acc
        })
    });
}

/// Golden fingerprint of the fabric-off access path, captured at the
/// PR 2 HEAD immediately before the fabric subsystem landed (commit
/// 1fa39bd): an FNV-1a fold over every latency and batch duration of a
/// fixed jittered probe covering local, 1-hop remote (scalar + batched,
/// two contending agents), 2-hop remote and PCIe-fallback accesses,
/// plus the GPU-stats totals of the **1-hop system only**. A
/// fabric-**off** system must still produce this exact value — the
/// fabric may only change timing when explicitly enabled.
///
/// Scope note: the 2-hop/PCIe sections deliberately fold latencies but
/// not stats, because PR 3 *intentionally* changed one fabric-off
/// statistic — `nvlink_bytes` now counts one line per traversed hop
/// (256 B for a 2-hop access where PR 2 recorded 128 B). Timing is
/// gated bit-for-bit on every route; byte accounting is gated only
/// where it was unchanged (1-hop).
const PRE_FABRIC_FINGERPRINT: u64 = 0x81b7_358b_d9c3_fd1a;

/// Replays the pre-fabric probe on today's simulator (fabric off).
fn fabric_off_fingerprint() -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mix = |h: &mut u64, x: u64| {
        *h ^= x;
        *h = h.wrapping_mul(0x0100_0000_01b3);
    };

    // Jittered DGX-1: local + 1-hop remote, scalar + batch, two
    // contending agents (pressure, congestion draws, nvlink queueing).
    let mut sys = MultiGpuSystem::new(SystemConfig::dgx1().with_seed(99));
    let p0 = sys.create_process(GpuId::new(0));
    let p1 = sys.create_process(GpuId::new(1));
    sys.enable_peer_access(p1, GpuId::new(0)).unwrap();
    let b0 = sys.malloc_on(p0, GpuId::new(0), 1 << 20).unwrap();
    let b1 = sys.malloc_on(p1, GpuId::new(0), 1 << 20).unwrap();
    let a0 = sys.default_agent(p0);
    let a1 = sys.default_agent(p1);
    let mut lat = Vec::new();
    for i in 0..512u64 {
        let t = i * 120;
        let acc = sys
            .access(p0, a0, b0.offset((i * 128 * 7) % (1 << 20)), t, None)
            .unwrap();
        mix(&mut h, u64::from(acc.latency));
        let acc = sys
            .access(p1, a1, b1.offset((i * 128 * 13) % (1 << 20)), t + 60, None)
            .unwrap();
        mix(&mut h, u64::from(acc.latency));
        if i % 16 == 0 {
            let vas: Vec<VirtAddr> = (0..16)
                .map(|k| b1.offset(((i + k) * 128 * 5) % (1 << 20)))
                .collect();
            lat.clear();
            let s = sys.access_batch_into(p1, a1, &vas, t + 90, &mut lat).unwrap();
            mix(&mut h, s.duration);
            for &l in &lat {
                mix(&mut h, u64::from(l));
            }
        }
    }
    let tot = sys.stats().total();
    mix(&mut h, tot.l2_hits);
    mix(&mut h, tot.l2_misses);
    mix(&mut h, tot.nvlink_bytes);
    mix(&mut h, tot.congestion_episodes);

    // 2-hop NVLink route (GPU0 -> GPU5 on the DGX-1), jittered.
    let mut cfg = SystemConfig::dgx1().with_seed(7);
    cfg.allow_indirect_peer = true;
    let mut sys = MultiGpuSystem::new(cfg);
    let p = sys.create_process(GpuId::new(0));
    sys.enable_peer_access(p, GpuId::new(5)).unwrap();
    let b = sys.malloc_on(p, GpuId::new(5), 1 << 18).unwrap();
    let a = sys.default_agent(p);
    for i in 0..256u64 {
        let acc = sys
            .access(p, a, b.offset((i * 128 * 3) % (1 << 18)), i * 400, None)
            .unwrap();
        mix(&mut h, u64::from(acc.latency));
    }

    // Disconnected pair: the PCIe fallback path, jittered.
    let mut cfg = SystemConfig::small_test().with_seed(3);
    cfg.topology = Topology::from_edges(2, &[]);
    cfg.allow_indirect_peer = true;
    let mut sys = MultiGpuSystem::new(cfg);
    let p = sys.create_process(GpuId::new(1));
    sys.enable_peer_access(p, GpuId::new(0)).unwrap();
    let b = sys.malloc_on(p, GpuId::new(0), 1 << 16).unwrap();
    let a = sys.default_agent(p);
    for i in 0..256u64 {
        let acc = sys
            .access(p, a, b.offset((i * 128) % (1 << 16)), i * 500, None)
            .unwrap();
        mix(&mut h, u64::from(acc.latency));
    }
    h
}

/// Fabric benches: the bit-identity gate first, then the per-access cost
/// of enabling the timed link model on remote routes (vs. the PR 2
/// scalar path measured by `remote_nvlink_access` above).
fn bench_fabric(c: &mut Criterion) {
    assert_eq!(
        fabric_off_fingerprint(),
        PRE_FABRIC_FINGERPRINT,
        "fabric-off access path diverged from the pre-fabric simulator"
    );

    let mk = |fabric: FabricConfig, spy_gpu: u8, home: u8| {
        let mut cfg = SystemConfig::dgx1().noiseless().with_fabric(fabric);
        cfg.allow_indirect_peer = true;
        let mut sys = MultiGpuSystem::new(cfg);
        let p = sys.create_process(GpuId::new(spy_gpu));
        sys.enable_peer_access(p, GpuId::new(home)).unwrap();
        let buf = sys.malloc_on(p, GpuId::new(home), 1 << 20).unwrap();
        let a = sys.default_agent(p);
        (sys, p, a, buf)
    };

    let (mut sys, p, a, buf) = mk(FabricConfig::nvlink_v1(), 1, 0);
    let mut t = 0u64;
    c.bench_function("remote_nvlink_access_fabric_on", |b| {
        b.iter(|| {
            t += 700;
            sys.access(p, a, buf.offset((t % 8192) * 128 % (1 << 20)), t, None)
                .unwrap()
        })
    });

    let (mut sys, p, a, buf) = mk(FabricConfig::nvlink_v1(), 0, 5);
    c.bench_function("remote_2hop_access_fabric_on", |b| {
        b.iter(|| {
            t += 700;
            sys.access(p, a, buf.offset((t % 8192) * 128 % (1 << 20)), t, None)
                .unwrap()
        })
    });

    let (mut sys, p, a, buf) = mk(FabricConfig::disabled(), 0, 5);
    c.bench_function("remote_2hop_access_fabric_off", |b| {
        b.iter(|| {
            t += 700;
            sys.access(p, a, buf.offset((t % 8192) * 128 % (1 << 20)), t, None)
                .unwrap()
        })
    });
}

fn bench_system_boot(c: &mut Criterion) {
    c.bench_function("boot_dgx1", |b| {
        b.iter_batched(
            SystemConfig::dgx1,
            MultiGpuSystem::new,
            BatchSize::SmallInput,
        )
    });
}

/// Eviction-set discovery rung: the faithful Algorithm-1 page classifier
/// vs the group-testing scan, on the small noiseless box (96 pages). The
/// `bench_discovery` binary gates the full DGX-scale numbers (simulated
/// accesses, >= 5x ratio); this rung tracks the host-side wall-clock of
/// both paths so classifier regressions show up in the criterion trend.
fn bench_discovery_scan(c: &mut Criterion) {
    let thr = Thresholds::paper_defaults();
    let scan = ScanConfig::classify_default();
    let run = |fast: bool| {
        let mut sys = MultiGpuSystem::new(SystemConfig::small_test().noiseless());
        let pid = sys.create_process(GpuId::new(0));
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let buf = ctx.malloc_on(GpuId::new(0), 96 * 4096).unwrap();
        let f = if fast { classify_pages_fast } else { classify_pages };
        let classes = f(&mut ctx, buf, 96 * 4096, 4096, 128, 16, &thr, Locality::Local, &scan)
            .unwrap();
        (
            classes,
            ctx.system().stats().gpu(GpuId::new(0)).issued_accesses,
        )
    };

    // Sanity before timing: identical classes, strictly fewer accesses.
    let (classic, classic_accesses) = run(false);
    let (grouped, grouped_accesses) = run(true);
    assert_eq!(
        classic.classes, grouped.classes,
        "group-testing scan must classify identically to Algorithm 1"
    );
    assert!(
        grouped_accesses * 2 < classic_accesses,
        "group-testing scan lost its access advantage \
         (classic {classic_accesses}, grouped {grouped_accesses})"
    );

    c.bench_function("classify_pages_alg1_small", |b| {
        b.iter(|| black_box(run(false)).1)
    });
    c.bench_function("classify_pages_grouped_small", |b| {
        b.iter(|| black_box(run(true)).1)
    });
}

/// Fleet rung: a small fleet stepped to a short horizon, serial vs two
/// shared-nothing workers. The `bench_fleet` binary reports the
/// full-scale 1-vs-N wall-clock numbers; this rung keeps the per-node
/// stepping cost (mini-scheduler + batch issue + recycle) in the
/// criterion trend so fleet-path regressions surface like any other.
fn bench_fleet_step(c: &mut Criterion) {
    let build = |threads: usize| {
        let mut cfg = FleetConfig::new(8, 77).with_target_utilization(0.6);
        cfg.horizon = 200_000;
        cfg.epoch = 25_000;
        cfg.threads = threads;
        FleetRunner::new(cfg, Box::new(Pack))
    };
    // The two variants must decode identically before we time them.
    let serial = build(1).run();
    let parallel = build(2).run();
    assert_eq!(
        serial.exposure_line("row"),
        parallel.exposure_line("row"),
        "fleet rung: thread count changed the decoded exposure table"
    );
    c.bench_function("fleet_step_8n_serial", |b| {
        b.iter_batched(
            || build(1),
            |r| black_box(r.run().exposure.accesses),
            BatchSize::LargeInput,
        )
    });
    c.bench_function("fleet_step_8n_2workers", |b| {
        b.iter_batched(
            || build(2),
            |r| black_box(r.run().exposure.accesses),
            BatchSize::LargeInput,
        )
    });
}

/// PR 10 rung: the streaming covert-channel monitor's overhead on a
/// windowed engine run. The monitor is pure stats-diffing outside the
/// hot path — per window it diffs ~21 channel counters and runs the
/// three detector laws — so on a busy fabric (the regime where anyone
/// would deploy it) the windowed loop with `Monitor::observe` at every
/// boundary must stay within the overhead budget of the identical
/// loop without it.
/// Asserted before either variant is timed, along with the monitor
/// being outcome-invisible (same issued-access totals).
fn bench_monitor_overhead(c: &mut Criterion) {
    use gpubox_sim::{run_windowed, Monitor, MonitorConfig, NoiseAgent, NoiseConfig};

    const HORIZON: u64 = 300_000;
    let build = || {
        let mut cfg = SystemConfig::dgx1()
            .with_seed(99)
            .with_fabric(FabricConfig::nvlink_v1());
        cfg.allow_indirect_peer = true;
        let mut sys = MultiGpuSystem::new(cfg);
        let mut agents: Vec<Box<dyn Agent>> = Vec::new();
        for t in 0..8usize {
            let pid = sys.create_process(GpuId::new((t % 4) as u8));
            let remote = GpuId::new((t % 4 + 4) as u8);
            sys.enable_peer_access(pid, remote).unwrap();
            let buf = sys.malloc_on(pid, remote, 64 * 1024).unwrap();
            agents.push(Box::new(NoiseAgent::new(
                pid,
                buf,
                512,
                128,
                NoiseConfig {
                    burst_len: 64,
                    idle_between_bursts: 400 + 61 * t as u64,
                    seed: 7 + t as u64,
                },
            )));
        }
        (sys, agents)
    };
    let run = |monitored: bool| {
        let (mut sys, agents) = build();
        let num_links = sys.config().topology.num_links();
        let num_gpus = sys.config().num_gpus as usize;
        let mut mon = Monitor::new(MonitorConfig::default(), num_links, num_gpus);
        let mut eng = Engine::new(&mut sys);
        for (i, a) in agents.into_iter().enumerate() {
            eng.add_agent(a, 53 * i as u64);
        }
        if monitored {
            mon.prime(eng.system().stats());
            run_windowed(&mut eng, &mut mon, HORIZON).unwrap();
        } else {
            let w = mon.config().window_cycles;
            let mut next = w;
            while next < HORIZON {
                eng.run(next).unwrap();
                next += w;
            }
            eng.run(HORIZON).unwrap();
        }
        drop(eng);
        (sys.stats().total().issued_accesses, mon.alarmed())
    };
    let (base_accesses, _) = run(false);
    let (mon_accesses, alarmed) = run(true);
    assert_eq!(
        base_accesses, mon_accesses,
        "monitor rung: observing the stats changed the simulation"
    );
    assert!(!alarmed, "monitor rung: benign fixture must not alarm");

    // Interleaved min-of-N so machine noise hits both variants alike.
    let mut best_off = u128::MAX;
    let mut best_on = u128::MAX;
    for _ in 0..5 {
        let t0 = std::time::Instant::now();
        black_box(run(false));
        best_off = best_off.min(t0.elapsed().as_nanos());
        let t0 = std::time::Instant::now();
        black_box(run(true));
        best_on = best_on.min(t0.elapsed().as_nanos());
    }
    let ratio = best_on as f64 / best_off as f64;
    // Guardrail with the same headroom rationale as the trace gate
    // above: the true overhead measures ~1.05–1.10x, but the min-of-5
    // jitters ~0.1x on 1-CPU/shared runners.
    println!("monitor overhead on windowed engine run: {ratio:.3}x (budget 1.25x)");
    assert!(
        ratio <= 1.25,
        "streaming monitor costs {ratio:.3}x on the windowed run — over budget"
    );

    c.bench_function("monitor_windowed_300k", |b| b.iter(|| black_box(run(true))));
}

criterion_group!(
    benches,
    bench_cache_layer,
    bench_access_path,
    bench_trial_fanout,
    bench_engine_overhead,
    bench_covert_e2e,
    bench_trace_overhead,
    bench_discovery_scan,
    bench_fabric,
    bench_system_boot,
    bench_fleet_step,
    bench_monitor_overhead
);
criterion_main!(benches);
