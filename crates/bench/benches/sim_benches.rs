//! Criterion microbenches for the simulator's hot paths.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gpubox_sim::{GpuId, MultiGpuSystem, SystemConfig};

fn bench_access_path(c: &mut Criterion) {
    let mut sys = MultiGpuSystem::new(SystemConfig::dgx1());
    let pid = sys.create_process(GpuId::new(0));
    let agent = sys.default_agent(pid);
    let buf = sys.malloc_on(pid, GpuId::new(0), 1 << 20).unwrap();
    let mut t = 0u64;
    c.bench_function("local_l2_access", |b| {
        b.iter(|| {
            t += 300;
            sys.access(
                pid,
                agent,
                buf.offset((t % 8192) * 128 % (1 << 20)),
                t,
                None,
            )
            .unwrap()
        })
    });

    let spy = sys.create_process(GpuId::new(1));
    sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
    let rbuf = sys.malloc_on(spy, GpuId::new(0), 1 << 20).unwrap();
    let sagent = sys.default_agent(spy);
    c.bench_function("remote_nvlink_access", |b| {
        b.iter(|| {
            t += 700;
            sys.access(
                spy,
                sagent,
                rbuf.offset((t % 8192) * 128 % (1 << 20)),
                t,
                None,
            )
            .unwrap()
        })
    });

    let vas: Vec<_> = (0..16u64).map(|i| rbuf.offset(i * 128)).collect();
    c.bench_function("warp_batch_probe_16", |b| {
        b.iter(|| {
            t += 1000;
            sys.access_batch(spy, sagent, &vas, t).unwrap()
        })
    });
}

fn bench_system_boot(c: &mut Criterion) {
    c.bench_function("boot_dgx1", |b| {
        b.iter_batched(
            SystemConfig::dgx1,
            MultiGpuSystem::new,
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(benches, bench_access_path, bench_system_boot);
criterion_main!(benches);
