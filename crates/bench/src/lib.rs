//! # gpubox-bench — experiment harness for the paper's tables and figures
//!
//! One binary per table/figure (see `src/bin/`), plus Criterion
//! microbenches under `benches/`. The [`setup`] module runs the shared
//! offline phase (timing reverse engineering, page classification,
//! alignment) at DGX-1 scale; [`report`] renders the same rows/series the
//! paper reports.

#![warn(missing_docs)]

pub mod report;
pub mod setup;

pub use setup::{AttackSetup, SideChannelSetup, ATTACK_BUFFER_BYTES};
