//! Extension — MIG-style L2 partitioning defence (paper Sec. VII).
//!
//! NVIDIA's Multi-Instance GPU assigns L2 slices exclusively to instances.
//! The paper notes MIG is unavailable on Pascal/Volta DGX machines; this
//! extension models it and shows that confining trojan and spy to
//! different partitions kills the covert channel, while co-partitioned
//! processes remain attackable.

use gpubox_attacks::covert::bits_from_bytes;
use gpubox_attacks::{transmit, ChannelParams};
use gpubox_bench::{report, AttackSetup};

fn run(partitions: Option<(u32, u32)>) -> f64 {
    let mut setup = AttackSetup::prepare(808);
    // Offline phase first (the attacker prepared before the defence was
    // switched on). Page classes stay valid under slicing — partition set
    // indices are a coarsening of the physical indices — so the question
    // is purely whether the two processes still share cache sets.
    let pairs = setup.aligned_pairs(2);
    if let Some((tp, sp)) = partitions {
        setup.sys.set_cache_partition(setup.trojan, tp, 2);
        setup.sys.set_cache_partition(setup.spy, sp, 2);
    }
    let payload = bits_from_bytes(b"partitioning defence check 0123456789abcdef");
    let rep = transmit(
        &mut setup.sys,
        setup.trojan,
        setup.spy,
        &pairs,
        &payload,
        &ChannelParams::default(),
        setup.thresholds,
    )
    .expect("transmission");
    rep.error_rate
}

fn main() {
    report::header(
        "Extension — MIG-style L2 partitioning (Sec. VII defence)",
        "isolated L2 slices remove cross-process contention",
    );
    let unpartitioned = run(None);
    let same_slice = run(Some((0, 0)));
    let isolated = run(Some((0, 1)));

    let rows = vec![
        (
            "no partitioning (DGX-1 today)".to_string(),
            format!("{:.1}%", unpartitioned * 100.0),
        ),
        (
            "both in slice 0 (mis-configured)".to_string(),
            format!("{:.1}%", same_slice * 100.0),
        ),
        (
            "trojan slice 0, spy slice 1".to_string(),
            format!("{:.1}%", isolated * 100.0),
        ),
    ];
    report::table2("configuration", "channel bit error", &rows);
    assert!(unpartitioned < 0.05, "baseline channel must work");
    assert!(isolated > 0.25, "isolation must break the channel");
    println!(
        "\nwith disjoint L2 slices the spy's probes never observe trojan\n\
         evictions: the channel degenerates to noise (~50% on random bits).\n\
         Sharing a slice (or no MIG at all, as on the Pascal DGX-1) leaves\n\
         the attack intact."
    );
}
