//! Extension — scaling the covert channel across additional GPU pairs.
//!
//! The paper (Sec. I): "Using additional parallelism (e.g., involving
//! additional GPUs) can further improve bandwidth, but we did not explore
//! this in this paper." This extension explores it: independent
//! trojan/spy pairs on disjoint NVLink-adjacent GPU pairs carry disjoint
//! message shards concurrently; their L2s are disjoint, so aggregate
//! bandwidth scales nearly linearly with the number of pairs.

use gpubox_attacks::covert::{
    bits_from_bytes, decode_trace, stripe_bits, unstripe_bits, SpyProbeAgent, TrojanAgent,
};
use gpubox_attacks::timing_re::measure_timing;
use gpubox_attacks::{
    align_classes, classify_pages, paired_sets, AlignmentConfig, ChannelParams, Locality,
    ScanConfig, SetPair,
};
use gpubox_bench::report;
use gpubox_sim::{Engine, GpuId, MultiGpuSystem, ProcessCtx, ProcessId, SystemConfig};

/// Prepares one trojan/spy pair on (target, spy) GPUs inside a shared box.
fn prepare_pair(
    sys: &mut MultiGpuSystem,
    target: GpuId,
    spy_gpu: GpuId,
    sets: usize,
) -> (
    ProcessId,
    ProcessId,
    Vec<SetPair>,
    gpubox_attacks::Thresholds,
) {
    let timing = measure_timing(sys, target, spy_gpu, 48).expect("timing");
    let trojan = sys.create_process(target);
    let spy = sys.create_process(spy_gpu);
    sys.enable_peer_access(spy, target).expect("peer");
    let bytes = 16 * 1024 * 1024u64;
    let page = sys.config().page_size;
    let tclasses = {
        let mut ctx = ProcessCtx::new(sys, trojan, 0);
        let b = ctx.malloc_on(target, bytes).unwrap();
        classify_pages(
            &mut ctx,
            b,
            bytes,
            page,
            128,
            16,
            &timing.thresholds,
            Locality::Local,
                &ScanConfig::classify_default(),
        )
        .unwrap()
    };
    let sclasses = {
        let mut ctx = ProcessCtx::new(sys, spy, 0);
        let b = ctx.malloc_on(target, bytes).unwrap();
        classify_pages(
            &mut ctx,
            b,
            bytes,
            page,
            128,
            16,
            &timing.thresholds,
            Locality::Remote,
                &ScanConfig::classify_default(),
        )
        .unwrap()
    };
    let matches = align_classes(
        sys,
        trojan,
        &tclasses,
        spy,
        &sclasses,
        16,
        &AlignmentConfig::default(),
    )
    .unwrap();
    let pairs = paired_sets(&tclasses, &sclasses, &matches, sets, 16)
        .into_iter()
        .map(|(t, s)| SetPair { trojan: t, spy: s })
        .collect();
    (trojan, spy, pairs, timing.thresholds)
}

fn main() {
    report::header(
        "Extension — multi-GPU-pair covert channel (the paper's future work)",
        "independent pairs (0<-1), (2<-3), (4<-5), (6<-7) transmit concurrently",
    );
    let gpu_pairs = [(0u8, 1u8), (2, 3), (4, 5), (6, 7)];
    let params = ChannelParams::default();
    let payload = bits_from_bytes(&vec![0xC3u8; 600]);
    let mut rows = Vec::new();

    for n in 1..=gpu_pairs.len() {
        let mut sys = MultiGpuSystem::new(SystemConfig::dgx1().with_seed(999));
        let mut endpoints = Vec::new();
        for &(t, s) in &gpu_pairs[..n] {
            endpoints.push(prepare_pair(&mut sys, GpuId::new(t), GpuId::new(s), 4));
        }
        // Shard the payload over pairs, each pair stripes over its 4 sets.
        let shards = stripe_bits(&payload, n);
        let mut eng = Engine::new(&mut sys);
        let mut all_traces = Vec::new();
        let mut listen_max = 0;
        for (pi, (trojan, spy, pairs, thr)) in endpoints.iter().enumerate() {
            let stripes = stripe_bits(&shards[pi], pairs.len());
            let frames: Vec<Vec<u8>> = stripes.iter().map(|st| params.frame(st)).collect();
            let listen =
                (frames.iter().map(Vec::len).max().unwrap() as u64 + 4) * params.slot_cycles;
            listen_max = listen.max(listen_max);
            let mut pair_traces = Vec::new();
            for (i, sp) in pairs.iter().enumerate() {
                let t = TrojanAgent::new(*trojan, &sp.trojan, frames[i].clone(), &params);
                let s = SpyProbeAgent::new(*spy, &sp.spy, *thr, &params, listen);
                pair_traces.push((s.trace(), stripes[i].len()));
                eng.add_agent(Box::new(s), 0);
                eng.add_agent(Box::new(t), params.slot_cycles / 2 + 37 * i as u64);
            }
            all_traces.push(pair_traces);
        }
        let end = eng
            .run(listen_max + 16 * params.slot_cycles)
            .expect("engine");

        // Decode shard by shard.
        let mut decoded_shards = Vec::new();
        for (pi, pair_traces) in all_traces.iter().enumerate() {
            let stripes: Vec<Vec<u8>> = pair_traces
                .iter()
                .map(|(tr, len)| decode_trace(&tr.samples(), &params, *len).payload)
                .collect();
            decoded_shards.push(unstripe_bits(&stripes, shards[pi].len()));
        }
        let received = unstripe_bits(&decoded_shards, payload.len());
        let errors = received
            .iter()
            .zip(&payload)
            .filter(|(a, b)| a != b)
            .count();
        let secs = end as f64 / 1.48e9;
        let bw = payload.len() as f64 / 8.0 / secs / 1e3;
        rows.push((
            n,
            format!("{bw:.1} KB/s"),
            format!("{:.2}%", errors as f64 / payload.len() as f64 * 100.0),
        ));
    }

    report::table3(("GPU pairs", "aggregate bandwidth", "error"), &rows);
    println!(
        "\nbandwidth scales with independent GPU pairs — each pair's channel\n\
              lives in a different L2, so they do not contend with each other."
    );
}
