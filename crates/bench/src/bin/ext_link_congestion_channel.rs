//! Extension — the NVLink-congestion covert channel over the timed link
//! fabric (the paper's second channel family, Sec. V).
//!
//! A bandwidth trojan on GPU1 saturates its route to GPU5's memory
//! during `1` slots; a throughput spy streams its own disjoint buffer
//! over a route sharing link (1,5) and decodes bits purely from its own
//! transfer latency — no shared cache set, no prime, no probe. The sweep
//! measures bandwidth and bit error along three axes:
//!
//! - **trojan intensity** (concurrent transfer streams): the channel
//!   needs the shared link driven to saturation — below it, the spy's
//!   dithered sampling sees mostly idle windows and the error rate sits
//!   near coin-flip; at saturation it decodes cleanly;
//! - **hop count**: 1-hop (spy on GPU1) vs 2-hop (spy on GPU0 routed
//!   0-1-5 by the fabric's canonical shortest paths, sharing (1,5));
//! - **background tenants**: noise processes on GPU2 whose 2-1-5 routes
//!   cross the same shared link, plus full timing noise (jitter, port
//!   contention, congestion episodes).
//!
//! Determinism is asserted two ways, mirroring `ext_multi_tenant_noise`
//! and `sweep_discovery_trials`: every sweep point is executed on both
//! the heap and the linear scheduler and the outcomes must be
//! **bit-identical**, and the whole sweep is executed through a parallel
//! and a serial [`TrialRunner`] fan-out, which must agree bit-for-bit.
//! The 2-hop noiseless point is the acceptance gate: its seeded payload
//! must decode with ≤ 5% bit error, and it must match what the
//! library-level [`gpubox_attacks::transmit_link`] produces.
//!
//! Usage: `ext_link_congestion_channel [--payload-bits=N] [--seed=S]`
//! (defaults: 64 bits, seed 0x11F0; CI passes `--payload-bits=32`).

use gpubox_attacks::covert::prepare_link_channel;
use gpubox_attacks::{
    transmit_link, BoundaryPolicy, ChannelParams, Decoder, LinkChannel, TrialRunner,
};
use gpubox_bench::report;
use gpubox_sim::{
    FabricConfig, GpuId, GpuStats, MultiGpuSystem, NoiseAgent, NoiseConfig, ProcessId,
    SchedulerKind, SystemConfig, VirtAddr,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One sweep configuration.
#[derive(Debug, Clone, Copy)]
struct Point {
    hops: u32,
    streams: usize,
    tenants: usize,
    noiseless: bool,
    /// [`FabricConfig::per_direction`]: full-duplex links (independent
    /// occupancy windows per direction). Off = the PR 3 half-duplex
    /// model every golden was captured under.
    duplex: bool,
    /// Reverse-direction spy: the spy sits on GPU5 and reads memory
    /// homed on GPU1, so its probes cross the shared link (1,5)
    /// *opposite* to the trojan's 1→5 streams — the configuration whose
    /// entire congestion signal is direction coupling.
    reverse: bool,
}

/// The common sweep shape; points override the axes they move.
const BASE: Point = Point {
    hops: 2,
    streams: 4,
    tenants: 0,
    noiseless: true,
    duplex: false,
    reverse: false,
};

impl Point {
    fn label(&self) -> String {
        format!(
            "{}{}{} streams, {} tenants, {}",
            if self.reverse {
                "rev-spy, ".to_string()
            } else {
                format!("{}-hop, ", self.hops)
            },
            if self.duplex { "duplex, " } else { "" },
            self.streams,
            self.tenants,
            if self.noiseless { "noiseless" } else { "noisy" }
        )
    }
}

/// Everything a run observes, compared bit-for-bit across schedulers and
/// across serial/parallel fan-out.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    received: Vec<u8>,
    spy_samples: Vec<(u64, u32, u32)>,
    end_clock: u64,
    /// The spy's listen span — the true transmission window. Bandwidth
    /// and utilisation are computed over this, not `end_clock`: runs
    /// with background tenants only end at the engine deadline (noise
    /// agents never finish), which would deflate both metrics by the
    /// grace slots and turn a bookkeeping difference into an apparent
    /// channel degradation.
    listen: u64,
    totals: GpuStats,
    shared_link_requests: u64,
    shared_link_queue_cycles: u64,
    shared_link_busy_cycles: u64,
    bit_errors: usize,
    /// Errors when the same trace is decoded by the matched filter
    /// instead of the per-sample vote (same boundary policy).
    mf_bit_errors: usize,
}

fn channel_params() -> ChannelParams {
    ChannelParams {
        spy_gap: 300,
        ..Default::default()
    }
}

/// Seeded pseudorandom payload — the receiver never sees it, so decoding
/// it back is genuine transmission, not a constant.
fn seeded_payload(seed: u64, bits: usize) -> Vec<u8> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..bits).map(|_| (rng.gen::<u32>() & 1) as u8).collect()
}

/// Runs one sweep point under a forced scheduler and returns the full
/// observable outcome.
fn run_point(p: Point, payload: &[u8], seed: u64, sched: SchedulerKind) -> Outcome {
    let fabric = if p.duplex {
        FabricConfig::nvlink_v1().with_per_direction()
    } else {
        FabricConfig::nvlink_v1()
    };
    let mut cfg = SystemConfig::dgx1().with_seed(seed).with_fabric(fabric);
    if p.noiseless {
        cfg = cfg.noiseless();
    }
    cfg.allow_indirect_peer = true;
    let mut sys = MultiGpuSystem::new(cfg);
    let home = GpuId::new(5);
    let page = sys.config().page_size;

    let trojan = sys.create_process(GpuId::new(1));
    // Forward points: the spy's 0-1-5 (2-hop) or 1-5 (1-hop) route
    // shares link (1,5) in the trojan's direction. Reverse points: the
    // spy sits on GPU5 reading memory homed on GPU1, crossing (1,5)
    // the opposite way.
    let spy_gpu = if p.reverse {
        GpuId::new(5)
    } else if p.hops == 2 {
        GpuId::new(0)
    } else {
        GpuId::new(1)
    };
    let spy_home = if p.reverse { GpuId::new(1) } else { home };
    let spy = sys.create_process(spy_gpu);
    sys.enable_peer_access(trojan, home).unwrap();
    sys.enable_peer_access(spy, spy_home).unwrap();
    let tb = sys.malloc_on(trojan, home, 32 * page).unwrap();
    let sb = sys.malloc_on(spy, spy_home, 2 * page).unwrap();
    let trojan_lines: Vec<VirtAddr> = (0..32).map(|i| tb.offset(i * page)).collect();
    let spy_lines: Vec<VirtAddr> = (0..2).map(|i| sb.offset(i * page)).collect();

    // Background tenants on GPU2: their 2-1-5 routes cross link (1,5).
    let mut tenant_bufs: Vec<(ProcessId, VirtAddr)> = Vec::new();
    for _ in 0..p.tenants {
        let pid = sys.create_process(GpuId::new(2));
        sys.enable_peer_access(pid, home).unwrap();
        let buf = sys.malloc_on(pid, home, 48 * page).unwrap();
        tenant_bufs.push((pid, buf));
    }

    let params = channel_params();

    // Shared library wiring (warm-up, spy, staggered trojan streams);
    // the sweep adds its background tenants on top.
    let (mut eng, trace, listen) = prepare_link_channel(
        &mut sys,
        trojan,
        spy,
        &LinkChannel {
            trojan_lines: &trojan_lines,
            spy_lines: &spy_lines,
            trojan_streams: p.streams,
        },
        payload,
        &params,
        sched,
    )
    .expect("fabric is enabled in every sweep config");
    for (i, &(pid, buf)) in tenant_bufs.iter().enumerate() {
        eng.add_agent(
            Box::new(NoiseAgent::new(
                pid,
                buf,
                48,
                page,
                NoiseConfig {
                    burst_len: 24,
                    idle_between_bursts: 2_500 + 517 * i as u64,
                    seed: 11 + i as u64,
                },
            )),
            101 * i as u64,
        );
    }
    // Run exactly to the spy's listen horizon: the spy has stopped and
    // the trojan's frame has drained by then, while the grace period
    // transmit() grants would only let the never-finishing noise
    // tenants keep accruing link traffic outside the measured window.
    let end_clock = eng.run(listen).unwrap();
    drop(eng);

    let samples = trace.samples();
    // The channel's default receive stack (quantile-anchored per-sample
    // vote) and the matched filter, decoding the *same* trace.
    let received = Decoder::Vote(BoundaryPolicy::Quantile)
        .decode(&samples, &params, payload.len())
        .payload;
    let bit_errors = received.iter().zip(payload).filter(|(a, b)| a != b).count();
    let mf = Decoder::MatchedFilter(BoundaryPolicy::Quantile)
        .decode(&samples, &params, payload.len())
        .payload;
    let mf_bit_errors = mf.iter().zip(payload).filter(|(a, b)| a != b).count();
    let shared = sys
        .config()
        .topology
        .link_between(GpuId::new(1), home)
        .expect("DGX-1 has a direct (1,5) link");
    let ls = *sys.link_stats(shared).unwrap();
    Outcome {
        received,
        spy_samples: samples.iter().map(|s| (s.at, s.lines, s.mean_latency)).collect(),
        end_clock,
        listen,
        totals: sys.stats().total(),
        shared_link_requests: ls.requests,
        shared_link_queue_cycles: ls.queue_cycles,
        shared_link_busy_cycles: ls.busy_cycles,
        bit_errors,
        mf_bit_errors,
    }
}

fn main() {
    let mut payload_bits = 64usize;
    let mut seed = 0x11F0u64;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--payload-bits=") {
            payload_bits = v.parse().expect("--payload-bits=N");
        } else if let Some(v) = arg.strip_prefix("--seed=") {
            seed = v.parse().expect("--seed=S");
        }
    }
    let payload = seeded_payload(seed, payload_bits);

    report::header(
        "Extension — NVLink-congestion covert channel over the timed fabric",
        "bandwidth trojan + throughput spy sharing link (1,5); no shared cache set",
    );

    let points = [
        // Trojan-intensity axis (2-hop, noiseless).
        Point { streams: 1, ..BASE },
        Point { streams: 2, ..BASE },
        BASE,
        Point { streams: 6, ..BASE },
        // Hop-count axis at saturation.
        Point { hops: 1, ..BASE },
        // Background-tenant axis under full timing noise.
        Point { noiseless: false, ..BASE },
        Point { tenants: 4, noiseless: false, ..BASE },
        Point { tenants: 8, noiseless: false, ..BASE },
        // Deeper tenant noise (beyond the PR 3 sweep): where the
        // per-sample vote's error floor shows and the matched filter
        // earns its keep.
        Point { tenants: 12, noiseless: false, ..BASE },
        Point { tenants: 16, noiseless: false, ..BASE },
        // Duplex axis (PR 4 per-direction model under the channel, the
        // PR 4 open item): a same-direction spy keeps decoding on
        // full-duplex links, a reverse-direction spy only couples with
        // the trojan through the shared half-duplex window — flipping
        // duplex on removes its entire signal.
        Point { duplex: true, ..BASE },
        Point { reverse: true, hops: 1, ..BASE },
        Point { reverse: true, hops: 1, duplex: true, ..BASE },
    ];

    // Every point on both schedulers: interleavings must be bit-identical.
    let mut outcomes = Vec::new();
    for p in points {
        let heap = run_point(p, &payload, seed, SchedulerKind::Heap);
        let linear = run_point(p, &payload, seed, SchedulerKind::Linear);
        assert_eq!(
            heap, linear,
            "heap and linear schedulers diverged at [{}]",
            p.label()
        );
        outcomes.push(heap);
    }

    // The whole sweep through parallel vs serial trial fan-out.
    let fan = |r: TrialRunner| {
        r.run(points.len(), |t| {
            run_point(points[t.index], &payload, seed, SchedulerKind::Heap)
        })
    };
    let par = fan(TrialRunner::new(seed));
    let ser = fan(TrialRunner::serial(seed));
    assert_eq!(par, ser, "parallel fan-out must be bit-identical to serial");
    assert_eq!(par, outcomes, "fan-out must reproduce the sweep outcomes");

    // Bit-compatibility gate: the vote decoder's per-point error counts
    // for the default seed, captured at the PR 3 HEAD (commit af72b35)
    // before the channel moved onto the unified pipeline. The first
    // eight points are exactly the PR 3 sweep.
    if seed == 0x11F0 {
        let golden: Option<[usize; 8]> = match payload_bits {
            64 => Some([28, 18, 1, 0, 0, 0, 2, 1]),
            32 => Some([17, 11, 0, 0, 0, 0, 2, 1]),
            _ => None,
        };
        if let Some(golden) = golden {
            let got: Vec<usize> = outcomes.iter().take(8).map(|o| o.bit_errors).collect();
            assert_eq!(
                got, golden,
                "vote-decoded error counts diverged from the PR 3 golden"
            );
        }
    }

    // Acceptance gate: the 2-hop noiseless saturated point decodes the
    // seeded payload with <= 5% bit error, and the library entry point
    // (transmit_link) produces the identical bit stream.
    let gate = points
        .iter()
        .position(|p| {
            p.hops == 2 && p.streams == 4 && p.tenants == 0 && p.noiseless && !p.duplex
                && !p.reverse
        })
        .unwrap();
    let ber = outcomes[gate].bit_errors as f64 / payload.len() as f64;
    assert!(
        ber <= 0.05,
        "2-hop noiseless channel error rate {ber} exceeds 5%"
    );
    {
        let mut cfg = SystemConfig::dgx1()
            .with_seed(seed)
            .with_fabric(FabricConfig::nvlink_v1())
            .noiseless();
        cfg.allow_indirect_peer = true;
        let mut sys = MultiGpuSystem::new(cfg);
        let home = GpuId::new(5);
        let page = sys.config().page_size;
        let trojan = sys.create_process(GpuId::new(1));
        let spy = sys.create_process(GpuId::new(0));
        sys.enable_peer_access(trojan, home).unwrap();
        sys.enable_peer_access(spy, home).unwrap();
        let tb = sys.malloc_on(trojan, home, 32 * page).unwrap();
        let sb = sys.malloc_on(spy, home, 2 * page).unwrap();
        let tl: Vec<VirtAddr> = (0..32).map(|i| tb.offset(i * page)).collect();
        let sl: Vec<VirtAddr> = (0..2).map(|i| sb.offset(i * page)).collect();
        let rep = transmit_link(
            &mut sys,
            trojan,
            spy,
            &LinkChannel {
                trojan_lines: &tl,
                spy_lines: &sl,
                trojan_streams: 4,
            },
            &payload,
            &channel_params(),
            SchedulerKind::Heap,
        )
        .expect("library transmission");
        assert_eq!(
            rep.received, outcomes[gate].received,
            "transmit_link must reproduce the sweep's gate point"
        );
    }

    // Duplex gate (PR 4 open item): quantify how much of the congestion
    // signal comes from direction coupling. A same-direction spy must
    // keep decoding on full-duplex links; a reverse-direction spy must
    // decode on half-duplex links (where opposing traffic shares one
    // occupancy window) and must LOSE the channel on full-duplex links
    // (where its direction is physically independent of the trojan's).
    {
        let find = |dup: bool, rev: bool| {
            points
                .iter()
                .position(|p| p.duplex == dup && p.reverse == rev && p.streams == 4 && p.tenants == 0)
                .map(|i| outcomes[i].bit_errors as f64 / payload.len() as f64)
                .unwrap()
        };
        let fwd_duplex = find(true, false);
        let rev_half = find(false, true);
        let rev_duplex = find(true, true);
        assert!(
            fwd_duplex <= 0.05,
            "same-direction spy must survive full duplex: BER {fwd_duplex}"
        );
        assert!(
            rev_half <= 0.05,
            "reverse spy must decode through the shared half-duplex window: BER {rev_half}"
        );
        assert!(
            rev_duplex >= 0.25,
            "full duplex must sever the reverse spy's direction coupling: BER {rev_duplex}"
        );
    }

    // Matched-filter gate: at one or more tenant-noise points the soft
    // slot decoder must strictly beat the per-sample vote on the same
    // trace — the ROADMAP's decoder-upgrade claim.
    let improved: Vec<String> = points
        .iter()
        .zip(&outcomes)
        .filter(|(p, o)| p.tenants > 0 && o.mf_bit_errors < o.bit_errors)
        .map(|(p, o)| {
            format!(
                "[{}] vote {} -> matched filter {}",
                p.label(),
                o.bit_errors,
                o.mf_bit_errors
            )
        })
        .collect();
    assert!(
        !improved.is_empty(),
        "matched filter should cut the error floor at >=1 tenant-noise point"
    );

    let clock_hz = SystemConfig::dgx1().timing.clock_hz;
    println!(
        "\n{:>38} | {:>14} | {:>14} | {:>24}",
        "configuration", "vote errors", "m.filter errs", "bandwidth / utilisation"
    );
    println!(
        "{}-+-{}-+-{}-+-{}",
        "-".repeat(38),
        "-".repeat(14),
        "-".repeat(14),
        "-".repeat(24)
    );
    for (p, o) in points.iter().zip(&outcomes) {
        let secs = o.listen as f64 / clock_hz;
        let bw = payload.len() as f64 / 8.0 / secs;
        let util = o.shared_link_busy_cycles as f64 / o.listen as f64;
        println!(
            "{:>38} | {:>14} | {:>14} | {:>24}",
            p.label(),
            format!(
                "{}/{} ({:.1}%)",
                o.bit_errors,
                payload.len(),
                100.0 * o.bit_errors as f64 / payload.len() as f64
            ),
            format!(
                "{}/{} ({:.1}%)",
                o.mf_bit_errors,
                payload.len(),
                100.0 * o.mf_bit_errors as f64 / payload.len() as f64
            ),
            format!("{:.1} B/s, link {:.0}% busy", bw, 100.0 * util),
        );
    }

    println!("\nmatched filter beats the per-sample vote at:");
    for line in &improved {
        println!("  {line}");
    }
    println!(
        "\nall points bit-identical across heap/linear schedulers and\n\
         serial/parallel fan-out (asserted above); the 2-hop noiseless\n\
         point decoded the seeded payload within the 5% error budget,\n\
         and the first eight points' vote decodes match the PR 3 golden\n\
         error counts exactly.\n\
         Below saturation the spy's dithered sampling mostly lands in the\n\
         link's idle windows (error near coin-flip for the 1s); from ~4\n\
         streams the shared link stays booked through every 1 slot and\n\
         the channel decodes cleanly — exactly the paper's observation\n\
         that the congestion channel needs a saturating trojan.\n\
         Duplex axis: a spy probing WITH the trojan's direction keeps the\n\
         channel on full-duplex links, while a reverse-direction spy only\n\
         receives through the shared half-duplex window — per-direction\n\
         occupancy severs it completely (asserted >=25% BER). All of the\n\
         reverse spy's signal is direction coupling; none of the forward\n\
         spy's is."
    );
}
