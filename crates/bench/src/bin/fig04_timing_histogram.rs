//! Fig. 4 — local/remote GPU access-time histogram.
//!
//! Reproduces the four latency clusters (local L2 hit, local miss, remote
//! L2 hit, remote miss) that the whole attack rests on.

use gpubox_attacks::timing_re::{histogram, measure_timing};
use gpubox_bench::report;
use gpubox_sim::{GpuId, MultiGpuSystem, SystemConfig};

fn main() {
    report::header(
        "Fig. 4 — local and remote GPU access time",
        "Sec. III-A: four timing clusters ~270/450/630/950 cycles",
    );
    let mut sys = MultiGpuSystem::new(SystemConfig::dgx1());
    let rep =
        measure_timing(&mut sys, GpuId::new(0), GpuId::new(1), 48).expect("timing experiment");

    let all = rep.samples.all();
    let hist = histogram(&all, 25);
    let max = hist.iter().map(|&(_, c)| c).max().unwrap_or(1) as f64;
    println!("\naccess-time histogram (bin = 25 cycles, 48 accesses per pass):\n");
    for (bin, count) in &hist {
        println!(
            "{bin:>5} cyc | {:<40} {count}",
            report::bar(*count as f64, max, 40)
        );
    }

    println!("\nk-means cluster centres (paper: ~270 / ~450 / ~630 / ~950):");
    let labels = [
        "local L2 hit",
        "local miss (HBM)",
        "remote L2 hit",
        "remote miss",
    ];
    let rows: Vec<(String, String)> = rep
        .centers
        .iter()
        .zip(labels)
        .map(|(c, l)| (l.to_string(), format!("{c:.0} cycles")))
        .collect();
    report::table2("cluster", "centre", &rows);

    println!(
        "\nderived thresholds: local miss >= {} cyc, remote miss >= {} cyc",
        rep.thresholds.local_miss, rep.thresholds.remote_miss
    );
    report::write_json("fig04_centers", &rep.centers.to_vec());
}
