//! Ablation — covert channel with and without eviction-set alignment.
//!
//! Without the Algorithm-2 alignment step the two processes contend on
//! *different* physical sets and the channel collapses to coin flips;
//! this quantifies how load-bearing the alignment protocol is.

use gpubox_attacks::covert::bits_from_bytes;
use gpubox_attacks::{transmit, ChannelParams, SetPair};
use gpubox_bench::{report, AttackSetup};

fn main() {
    report::header(
        "Ablation — channel error with vs. without set alignment",
        "Sec. IV-A: the alignment step is what makes the channel work",
    );
    let mut setup = AttackSetup::prepare(777);
    let pairs = setup.aligned_pairs(8);
    let payload = bits_from_bytes(b"alignment ablation payload 0123456789");
    let params = ChannelParams::default();

    // Aligned: the real protocol output.
    let aligned = transmit(
        &mut setup.sys,
        setup.trojan,
        setup.spy,
        &pairs[..2],
        &payload,
        &params,
        setup.thresholds,
    )
    .expect("aligned transmission");

    // Misaligned: pair each trojan set with a spy set of a *different*
    // physical set (offset shifted by one within the page class).
    let misaligned_pairs: Vec<SetPair> = vec![
        SetPair {
            trojan: pairs[0].trojan.clone(),
            spy: pairs[1].spy.clone(),
        },
        SetPair {
            trojan: pairs[2].trojan.clone(),
            spy: pairs[3].spy.clone(),
        },
    ];
    let misaligned = transmit(
        &mut setup.sys,
        setup.trojan,
        setup.spy,
        &misaligned_pairs,
        &payload,
        &params,
        setup.thresholds,
    )
    .expect("misaligned transmission");

    let rows = vec![
        (
            "aligned (Algorithm 2)".to_string(),
            format!("{:.2}%", aligned.error_rate * 100.0),
        ),
        (
            "misaligned".to_string(),
            format!("{:.2}%", misaligned.error_rate * 100.0),
        ),
    ];
    report::table2("configuration", "bit error rate", &rows);
    println!(
        "\naligned errors: {}/{}  misaligned errors: {}/{}",
        aligned.bit_errors,
        aligned.sent.len(),
        misaligned.bit_errors,
        misaligned.sent.len()
    );
    println!(
        "\nwithout alignment the spy never observes the trojan's contention\n\
              and decodes noise (~50% of a random payload's bits wrong)."
    );
}
