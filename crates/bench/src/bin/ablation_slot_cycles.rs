//! Ablation — covert-channel slot length (the paper's tuned parameter).
//!
//! The paper tunes trojan-side pacing "to communicate the covert message
//! successfully" (Sec. IV-C). This ablation sweeps the bit-slot length:
//! short slots raise bandwidth but leave too few probes per slot for
//! majority voting; long slots are robust but slow.

use gpubox_attacks::covert::bits_from_bytes;
use gpubox_attacks::{transmit, ChannelParams};
use gpubox_bench::{report, AttackSetup};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    report::header(
        "Ablation — bit-slot length vs. bandwidth and error (4 sets)",
        "Sec. IV-C: the pacing parameter the paper tunes by hand",
    );
    let mut setup = AttackSetup::prepare(3131);
    let pairs = setup.aligned_pairs(4);
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let payload_bytes: Vec<u8> = (0..400).map(|_| rng.gen()).collect();
    let payload = bits_from_bytes(&payload_bytes);

    let mut rows = Vec::new();
    for &slot in &[1_500u64, 3_000, 6_000, 12_000, 24_000] {
        let params = ChannelParams {
            slot_cycles: slot,
            ..Default::default()
        };
        let rep = transmit(
            &mut setup.sys,
            setup.trojan,
            setup.spy,
            &pairs,
            &payload,
            &params,
            setup.thresholds,
        )
        .expect("transmission");
        rows.push((
            slot,
            format!("{:.1} KB/s", rep.bandwidth_bytes_per_sec / 1e3),
            format!("{:.2}%", rep.error_rate * 100.0),
        ));
    }
    report::table3(("slot (cycles)", "bandwidth", "error"), &rows);
    println!(
        "\nshort slots fit at most one probe (votes become coin flips on\n\
         boundary probes); beyond ~6000 cycles extra robustness no longer\n\
         pays for the halved bandwidth — matching the default."
    );
}
