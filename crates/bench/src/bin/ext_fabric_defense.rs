//! Extension — **fabric QoS defences vs both covert-channel families**:
//! the security/performance frontier of the interconnect-side
//! mitigations (the Sec. VII counterpart to `ext_partition_defense`,
//! which closes the cache side).
//!
//! Each defence of `gpubox_sim::qos` runs at several strengths against:
//!
//! - the **NVLink-congestion channel** (trojan on GPU1 saturating its
//!   direct link to GPU5's memory, spy on GPU0 sharing link (1,5) over
//!   its 0-1-5 route), decoded by both the per-sample vote and the
//!   matched filter. The link runs are **noiseless** — the pure link
//!   medium, like the PR 3 acceptance gate — because with full timing
//!   noise the trojan's accesses additionally modulate the home GPU's
//!   *L2 port-pressure* window, a cache-side side-signal that no
//!   interconnect defence can (or should) remove: rate limiting kills
//!   the congestion signal completely yet the pressure residue alone
//!   still decodes. Fabric QoS is evaluated on the channel it defends;
//!   the pressure residue belongs to the cache-side story
//!   (`ext_partition_defense`, Sec. VI mitigation);
//! - the **L2 Prime+Probe channel** over the same fabric-enabled DGX-1
//!   (trojan GPU0, spy GPU5, 4 aligned set pairs) with the offline
//!   phase re-run **under the defence**
//!   ([`AttackSetup::prepare_fabric_qos`]) — the adaptive attacker who
//!   recalibrates thresholds against the deployed mitigation. A
//!   defence harsh enough to break the offline phase itself (timing
//!   clusters no longer separable, alignment finds no pairs) is
//!   reported as a collapse;
//! - a **benign multi-tenant mix** (the `ext_multi_tenant_noise`
//!   recipe: vectoradd/histogram trace replays plus bursty noise
//!   kernels, half the tenants streaming over NVLink), measuring the
//!   defence's throughput cost as the drop in accesses completed
//!   within a fixed simulated window.
//!
//! Determinism is asserted as everywhere in this repo: every
//! link-channel point and every benign-mix point runs on both the heap
//! and the linear scheduler and must be bit-identical, and the
//! link-channel sweep re-runs through a parallel and a serial
//! [`TrialRunner`] fan-out which must agree bit-for-bit.
//!
//! CI gates:
//! - the undefended baseline decodes at ≤ 5% BER (both decoders);
//! - **every defence at full strength pushes the link-channel BER to
//!   ≥ 25% for both decoders** — the channel is unusable;
//! - at least one defence configuration reaches that bar at **≤ 15%
//!   benign throughput cost** (the deployable point of the frontier);
//! - every defence keeps the benign cost bounded (≤ 60%).
//!
//! Usage: `ext_fabric_defense [--payload-bits=N] [--cycles=N] [--seed=S]`
//! (defaults: 64 bits, 600_000 benign cycles, seed 0x5EC5; CI passes
//! `--payload-bits=48`).

use gpubox_attacks::{
    redecode_traces, transmit_link, transmit_over, BoundaryPolicy, ChannelParams, L2SetMedium,
    LinkChannel, OfflineCache, Pipeline, TrialRunner,
};
use gpubox_bench::{report, AttackSetup};
use gpubox_sim::{
    Agent, Engine, FabricConfig, GpuId, MultiGpuSystem, NoiseAgent, NoiseConfig, QosConfig,
    SchedulerKind, SystemConfig, VirtAddr,
};
use gpubox_workloads::{agent_for, Histogram, VectorAdd, Workload};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One defence configuration on the sweep.
#[derive(Debug, Clone, Copy)]
struct Defence {
    label: &'static str,
    qos: QosConfig,
    /// Whether this is a family's full-strength point (gated to break
    /// the link channel).
    full: bool,
}

fn defences(seed: u64) -> Vec<Defence> {
    vec![
        Defence {
            label: "no defence",
            qos: QosConfig::off(),
            full: false,
        },
        // Token buckets: NVLink-V1 moves ~12.8 B/cycle ≈ 13_100 B per
        // 1024 cycles at full tilt. 50% still admits partial
        // saturation; 10% starves the bandwidth trojan outright while
        // benign bursts (≤ 4 KiB) still pass at link speed.
        Defence {
            label: "rate limit 50%",
            qos: QosConfig::off().with_rate_limit(6_400, 8_192),
            full: false,
        },
        Defence {
            label: "rate limit 10% (full)",
            qos: QosConfig::off().with_rate_limit(1_280, 4_096),
            full: true,
        },
        // Grant pacing: latency measures the phase against the epoch
        // grid instead of the trojan's slot structure.
        Defence {
            label: "pacing 1.5k",
            qos: QosConfig::off().with_pacing(1_500),
            full: false,
        },
        Defence {
            label: "pacing 3k (full)",
            qos: QosConfig::off().with_pacing(3_000),
            full: true,
        },
        // Seeded grant jitter: first-party noise wider than the queue
        // signal.
        Defence {
            label: "jitter 3k (full)",
            qos: QosConfig::off().with_jitter(3_000, seed ^ 0xD1CE),
            full: true,
        },
        // Valiant routing: no single link can be saturated end-to-end.
        Defence {
            label: "valiant (full)",
            qos: QosConfig::off().with_valiant(seed ^ 0xF00D),
            full: true,
        },
    ]
}

/// The one shared system configuration (noisy fabric-enabled DGX-1,
/// as `ext_two_hop_channel`) with a defence layered on.
fn shared_config(seed: u64, qos: QosConfig) -> SystemConfig {
    let mut cfg = SystemConfig::dgx1()
        .with_seed(seed)
        .with_fabric(FabricConfig::nvlink_v1().with_qos(qos));
    cfg.allow_indirect_peer = true;
    cfg
}

fn seeded_payload(seed: u64, bits: usize) -> Vec<u8> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..bits).map(|_| (rng.gen::<u32>() & 1) as u8).collect()
}

fn link_params() -> ChannelParams {
    ChannelParams {
        spy_gap: 300,
        ..Default::default()
    }
}

/// Link-channel outcome under one defence, compared bit-for-bit across
/// schedulers and fan-outs.
#[derive(Debug, Clone, PartialEq)]
struct LinkOutcome {
    vote_received: Vec<u8>,
    mf_received: Vec<u8>,
    vote_errors: usize,
    mf_errors: usize,
    shaped_bytes: u64,
    valiant_detours: u64,
}

/// Runs the NVLink-congestion channel under `qos` on a forced
/// scheduler. Noiseless: the pure link medium (see the module docs for
/// why the port-pressure side-signal is excluded here).
fn run_link(qos: QosConfig, payload: &[u8], seed: u64, sched: SchedulerKind) -> LinkOutcome {
    let mut sys = MultiGpuSystem::new(shared_config(seed, qos).noiseless());
    let home = GpuId::new(5);
    let page = sys.config().page_size;
    let trojan = sys.create_process(GpuId::new(1));
    let spy = sys.create_process(GpuId::new(0));
    sys.enable_peer_access(trojan, home).unwrap();
    sys.enable_peer_access(spy, home).unwrap();
    let tb = sys.malloc_on(trojan, home, 32 * page).unwrap();
    let sb = sys.malloc_on(spy, home, 2 * page).unwrap();
    let tl: Vec<VirtAddr> = (0..32).map(|i| tb.offset(i * page)).collect();
    let sl: Vec<VirtAddr> = (0..2).map(|i| sb.offset(i * page)).collect();
    let params = link_params();
    let rep = transmit_link(
        &mut sys,
        trojan,
        spy,
        &LinkChannel {
            trojan_lines: &tl,
            spy_lines: &sl,
            trojan_streams: 4,
        },
        payload,
        &params,
        sched,
    )
    .expect("link transmission");
    let (mf_received, _) = redecode_traces(
        &rep.traces,
        &params,
        &Pipeline::matched_filter(BoundaryPolicy::Quantile),
        payload.len(),
    );
    let mf_errors = mf_received.iter().zip(payload).filter(|(a, b)| a != b).count();
    let q = *sys.stats().qos();
    LinkOutcome {
        vote_errors: rep.bit_errors,
        vote_received: rep.received,
        mf_received,
        mf_errors,
        shaped_bytes: q.shaped_bytes,
        valiant_detours: q.valiant_detours,
    }
}

/// Runs the L2 Prime+Probe family under `qos` with the offline phase
/// re-derived under the defence. `None` when the offline phase itself
/// collapses (the defence broke calibration/alignment before a single
/// bit was sent).
fn run_l2(qos: QosConfig, payload: &[u8], seed: u64, sched: SchedulerKind) -> Option<(usize, usize)> {
    let params = ChannelParams::default();
    let result = std::panic::catch_unwind(|| {
        let mut setup = AttackSetup::prepare_fabric_qos(seed, GpuId::new(0), GpuId::new(5), qos);
        let pairs = setup.aligned_pairs(4);
        let medium = L2SetMedium {
            trojan: setup.trojan,
            spy: setup.spy,
            pairs: &pairs,
            thresholds: setup.thresholds,
        };
        let rep = transmit_over(
            &mut setup.sys,
            &medium,
            payload,
            &params,
            &Pipeline::vote(BoundaryPolicy::TwoMeans),
            sched,
        )
        .expect("L2 transmission");
        let (mf_received, _) = redecode_traces(
            &rep.traces,
            &params,
            &Pipeline::matched_filter(BoundaryPolicy::TwoMeans),
            payload.len(),
        );
        let mf_errors = mf_received.iter().zip(payload).filter(|(a, b)| a != b).count();
        (rep.bit_errors, mf_errors)
    });
    match result {
        Ok(v) => Some(v),
        Err(e) => {
            // Only the offline phase's known failure modes count as a
            // collapse; anything else is a genuine bug and must fail
            // the sweep, not masquerade as a defence success.
            let msg = e
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| e.downcast_ref::<&str>().copied())
                .unwrap_or("(non-string panic payload)");
            let expected = msg.contains("aligned pairs")
                || msg.contains("alignment protocol")
                || msg.contains("page classification")
                || msg.contains("timing reverse engineering");
            assert!(expected, "L2 run died with an unexpected panic: {msg}");
            None
        }
    }
}

/// Benign-mix outcome, compared bit-for-bit across schedulers.
#[derive(Debug, Clone, PartialEq)]
struct BenignOutcome {
    issued_accesses: u64,
    end_clock: u64,
}

/// Runs the benign multi-tenant mix (no attacker at all) under `qos`
/// for `cycles` simulated cycles: 8 tenants in the
/// `ext_multi_tenant_noise` recipe — vectoradd/histogram trace replays
/// (local compute tenants) and bursty noise kernels whose buffers are
/// homed one NVLink hop away, so half the mix streams over the fabric
/// the defences act on.
fn run_benign(qos: QosConfig, cycles: u64, seed: u64, sched: SchedulerKind) -> BenignOutcome {
    let mut sys = MultiGpuSystem::new(shared_config(seed, qos));
    let mut agents: Vec<Box<dyn Agent>> = Vec::new();
    for t in 0..8usize {
        let gpu = GpuId::new((t % 4) as u8);
        let pid = sys.create_process(gpu);
        match t % 4 {
            0 => {
                // Sized so the replay outlives the measured window.
                let w = VectorAdd::new(2048 + 256 * t);
                agents.push(Box::new(agent_for(&mut sys, pid, &w as &dyn Workload).unwrap()));
            }
            1 => {
                let w = Histogram::new(2048 + 256 * t, 32);
                agents.push(Box::new(agent_for(&mut sys, pid, &w as &dyn Workload).unwrap()));
            }
            _ => {
                // Remote tenant: buffer homed one hop away (g ↔ g+4),
                // every access crosses a distinct NVLink link.
                let remote = GpuId::new((t % 4 + 4) as u8);
                sys.enable_peer_access(pid, remote).unwrap();
                let buf = sys.malloc_on(pid, remote, 128 * 1024).unwrap();
                agents.push(Box::new(NoiseAgent::new(
                    pid,
                    buf,
                    1024,
                    128,
                    NoiseConfig {
                        burst_len: 24,
                        idle_between_bursts: 2_500 + 173 * t as u64,
                        seed: 11 + t as u64,
                    },
                )));
            }
        }
    }
    let mut eng = Engine::with_scheduler(&mut sys, sched);
    for (i, a) in agents.into_iter().enumerate() {
        eng.add_agent(a, 53 * i as u64);
    }
    let end_clock = eng.run(cycles).unwrap();
    drop(eng);
    BenignOutcome {
        issued_accesses: sys.stats().total().issued_accesses,
        end_clock,
    }
}

fn main() {
    let mut payload_bits = 64usize;
    let mut cycles = 600_000u64;
    let mut seed = 0x5EC5u64;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--payload-bits=") {
            payload_bits = v.parse().expect("--payload-bits=N");
        } else if let Some(v) = arg.strip_prefix("--cycles=") {
            cycles = v.parse().expect("--cycles=N");
        } else if let Some(v) = arg.strip_prefix("--seed=") {
            seed = v.parse().expect("--seed=S");
        }
    }
    let payload = seeded_payload(seed, payload_bits);
    let defs = defences(seed);

    report::header(
        "Extension — fabric QoS defences vs both covert-channel families",
        "rate limiting / pacing / jitter / valiant routing: security-performance frontier",
    );

    // --- link channel under every defence, both schedulers ------------
    let mut link: Vec<LinkOutcome> = Vec::new();
    for d in &defs {
        let heap = run_link(d.qos, &payload, seed, SchedulerKind::Heap);
        let linear = run_link(d.qos, &payload, seed, SchedulerKind::Linear);
        assert_eq!(heap, linear, "schedulers diverged under [{}]", d.label);
        link.push(heap);
    }

    // The link sweep again through parallel vs serial fan-out.
    let fan = |r: TrialRunner| {
        r.run(defs.len(), |t| {
            run_link(defs[t.index].qos, &payload, seed, SchedulerKind::Heap)
        })
    };
    let par = fan(TrialRunner::new(seed));
    let ser = fan(TrialRunner::serial(seed));
    assert_eq!(par, ser, "parallel fan-out must be bit-identical to serial");
    assert_eq!(par, link, "fan-out must reproduce the sweep outcomes");

    // --- benign mix under every defence, both schedulers --------------
    let mut benign: Vec<BenignOutcome> = Vec::new();
    for d in &defs {
        let heap = run_benign(d.qos, cycles, seed, SchedulerKind::Heap);
        let linear = run_benign(d.qos, cycles, seed, SchedulerKind::Linear);
        assert_eq!(heap, linear, "benign mix diverged under [{}]", d.label);
        benign.push(heap);
    }
    let base_accesses = benign[0].issued_accesses;

    // --- L2 family (offline phase re-derived under the defence) -------
    // Suppress the panic trace while probing whether the offline phase
    // survives each defence; a collapse is a legitimate outcome.
    let prev_hook = std::panic::take_hook();
    if std::env::var("DBG_PANIC").is_err() { std::panic::set_hook(Box::new(|_| {})); }
    let l2: Vec<Option<(usize, usize)>> = defs
        .iter()
        .map(|d| run_l2(d.qos, &payload, seed, SchedulerKind::Heap))
        .collect();
    std::panic::set_hook(prev_hook);
    // The undefended L2 baseline must work and be scheduler-invariant.
    assert_eq!(
        l2[0],
        run_l2(defs[0].qos, &payload, seed, SchedulerKind::Linear),
        "L2 baseline diverged across schedulers"
    );

    // --- offline-cache transparency at the L2 baseline point -----------
    // Re-run the baseline three ways — cache miss (derives), cache hit
    // (skips discovery entirely), and cache-free — through one explicit
    // local cache, and demand bit-identical channel output: the offline
    // cache must never change what the attack does, only what it costs.
    {
        let params = ChannelParams::default();
        let run_with = |cache: Option<&OfflineCache>| {
            let mut cfg = SystemConfig::dgx1()
                .with_seed(seed)
                .with_fabric(FabricConfig::nvlink_v1().with_qos(defs[0].qos));
            cfg.allow_indirect_peer = true;
            let mut setup =
                AttackSetup::prepare_with_cache(cfg, GpuId::new(0), GpuId::new(5), cache);
            let cached = setup.offline_cached;
            let pairs = setup.aligned_pairs(4);
            let medium = L2SetMedium {
                trojan: setup.trojan,
                spy: setup.spy,
                pairs: &pairs,
                thresholds: setup.thresholds,
            };
            let rep = transmit_over(
                &mut setup.sys,
                &medium,
                &payload,
                &params,
                &Pipeline::vote(BoundaryPolicy::TwoMeans),
                SchedulerKind::Heap,
            )
            .expect("L2 baseline transmission");
            (cached, rep.received, rep.bit_errors, rep.duration_cycles)
        };
        let local_cache = OfflineCache::new();
        let derived = run_with(Some(&local_cache));
        let reused = run_with(Some(&local_cache));
        let cache_free = run_with(None);
        assert!(!derived.0, "first cache run must derive");
        assert!(reused.0, "second cache run must reuse");
        assert!(!cache_free.0);
        assert_eq!(
            (&derived.1, derived.2, derived.3),
            (&reused.1, reused.2, reused.3),
            "cache hit changed the L2 baseline channel"
        );
        assert_eq!(
            (&derived.1, derived.2, derived.3),
            (&cache_free.1, cache_free.2, cache_free.3),
            "cache participation changed the L2 baseline channel"
        );
    }

    // --- gates ---------------------------------------------------------
    let ber = |e: usize| e as f64 / payload.len() as f64;
    assert!(
        ber(link[0].vote_errors) <= 0.05 && ber(link[0].mf_errors) <= 0.05,
        "undefended link channel must decode: vote {} mf {}",
        link[0].vote_errors,
        link[0].mf_errors
    );
    let l2_base = l2[0].expect("undefended L2 offline phase must succeed");
    assert!(
        ber(l2_base.0) <= 0.05,
        "undefended L2 channel must decode: {} errors",
        l2_base.0
    );
    let mut deployable = Vec::new();
    for ((d, lo), b) in defs.iter().zip(&link).zip(&benign) {
        let cost = 1.0 - b.issued_accesses as f64 / base_accesses as f64;
        if d.full {
            assert!(
                ber(lo.vote_errors) >= 0.25 && ber(lo.mf_errors) >= 0.25,
                "[{}] must push link BER >= 25% on both decoders: vote {:.1}% mf {:.1}%",
                d.label,
                100.0 * ber(lo.vote_errors),
                100.0 * ber(lo.mf_errors)
            );
            assert!(
                cost <= 0.60,
                "[{}] benign throughput cost {:.1}% exceeds the 60% bound",
                d.label,
                100.0 * cost
            );
        }
        if ber(lo.vote_errors) >= 0.25 && ber(lo.mf_errors) >= 0.25 && cost <= 0.15 {
            deployable.push(d.label);
        }
    }
    assert!(
        !deployable.is_empty(),
        "at least one defence must break the link channel at <= 15% benign cost"
    );

    // --- report --------------------------------------------------------
    println!(
        "\n{:>22} | {:>13} | {:>13} | {:>17} | {:>11}",
        "defence", "link vote BER", "link m.f. BER", "L2 vote/m.f. BER", "benign cost"
    );
    println!(
        "{}-+-{}-+-{}-+-{}-+-{}",
        "-".repeat(22),
        "-".repeat(13),
        "-".repeat(13),
        "-".repeat(17),
        "-".repeat(11)
    );
    for (((d, lo), b), l2o) in defs.iter().zip(&link).zip(&benign).zip(&l2) {
        let cost = 1.0 - b.issued_accesses as f64 / base_accesses as f64;
        println!(
            "{:>22} | {:>13} | {:>13} | {:>17} | {:>11}",
            d.label,
            format!("{:.1}%", 100.0 * ber(lo.vote_errors)),
            format!("{:.1}%", 100.0 * ber(lo.mf_errors)),
            match l2o {
                Some((v, m)) => format!("{:.1}% / {:.1}%", 100.0 * ber(*v), 100.0 * ber(*m)),
                None => "offline collapse".to_string(),
            },
            format!("{:.1}%", 100.0 * cost),
        );
    }

    println!("\ndeployable frontier (link BER >= 25% on both decoders at <= 15% cost):");
    for label in &deployable {
        println!("  {label}");
    }
    println!(
        "\nall link-channel and benign-mix points are bit-identical across\n\
         heap/linear schedulers and serial/parallel fan-out (asserted).\n\
         The bandwidth trojan needs *sustained* single-link saturation:\n\
         per-tenant token buckets starve exactly that while benign\n\
         traffic — scalar self-clocked loads that never outrun the\n\
         refill — passes untouched, the interconnect analogue of MIG\n\
         partitioning and the frontier's free lunch. Pacing and jitter\n\
         instead *inject* timing noise at the link: they destroy the\n\
         slot structure both decoders need, cost every fabric-crossing\n\
         tenant visibly, and are blunt enough to collapse even the L2\n\
         family's offline phase (eviction discovery stops converging).\n\
         Valiant routing removes the single-link rendezvous itself.\n\
         The sharpest taxonomy line is the 50% rate-limit row: the\n\
         link channel dies at zero benign cost while the L2\n\
         Prime+Probe channel — riding cache state, not link\n\
         bandwidth — decodes clean through it; bandwidth isolation\n\
         closes the congestion family only, and closing the cache\n\
         family still takes ext_partition_defense's L2 slicing. Only\n\
         the 10% limit bites the L2 spy too: its own 16-line warp\n\
         probes then outrun the refill and inherit backlog-dependent\n\
         delays."
    );
}
