//! Fig. 5 — validating the eviction set determination.
//!
//! Sweeps the number of conflict-set lines chased between two accesses of
//! a target line, on both the local and the remote GPU: the target's
//! re-access flips from hit to miss exactly at the associativity (16),
//! confirming the eviction sets and the deterministic LRU replacement.

use gpubox_attacks::validation_sweep;
use gpubox_bench::{report, AttackSetup};
use gpubox_sim::ProcessCtx;
use serde::Serialize;

#[derive(Serialize)]
struct SweepPoint {
    n: usize,
    local_cycles: u32,
    remote_cycles: u32,
}

fn main() {
    report::header(
        "Fig. 5 — eviction set validation (local and remote GPU)",
        "Sec. III-B: eviction after every 16th access, LRU-deterministic",
    );
    let mut setup = AttackSetup::prepare(77);

    // Local sweep: trojan's own class-0 conflict lines.
    let (t_conf, t_target) = conflict_lines(&setup.trojan_classes);
    let local = {
        let mut ctx = ProcessCtx::new(&mut setup.sys, setup.trojan, 0);
        validation_sweep(&mut ctx, t_target, &t_conf, 32).expect("local sweep")
    };
    // Remote sweep: the spy's conflict lines over NVLink.
    let (s_conf, s_target) = conflict_lines(&setup.spy_classes);
    let remote = {
        let mut ctx = ProcessCtx::new(&mut setup.sys, setup.spy, 0);
        validation_sweep(&mut ctx, s_target, &s_conf, 32).expect("remote sweep")
    };

    println!("\n target re-access latency vs. lines chased (miss step at n=16):\n");
    let mut points = Vec::new();
    println!(
        "{:>4} | {:>12} | {:>13} |",
        "n", "local cycles", "remote cycles"
    );
    println!("-----+--------------+---------------+");
    for ((n, lc), (_, rc)) in local.iter().zip(&remote) {
        let marker = if *n == 16 { "  <-- associativity" } else { "" };
        println!("{n:>4} | {lc:>12} | {rc:>13} |{marker}");
        points.push(SweepPoint {
            n: *n,
            local_cycles: *lc,
            remote_cycles: *rc,
        });
    }

    let local_step = local
        .iter()
        .find(|(_, t)| setup.thresholds.is_local_miss(*t));
    let remote_step = remote
        .iter()
        .find(|(_, t)| setup.thresholds.is_remote_miss(*t));
    println!(
        "\nfirst miss: local at n={:?}, remote at n={:?} (paper: 16 on both)",
        local_step.map(|(n, _)| *n),
        remote_step.map(|(n, _)| *n)
    );
    report::write_json("fig05_sweep", &points);
}

fn conflict_lines(
    classes: &gpubox_attacks::PageClasses,
) -> (Vec<gpubox_sim::VirtAddr>, gpubox_sim::VirtAddr) {
    let class0 = &classes.classes[0];
    assert!(class0.len() >= 33, "need 33 pages in class 0");
    let conf = class0[..32]
        .iter()
        .map(|&p| classes.base.offset(p * classes.page_size))
        .collect();
    let target = classes.base.offset(class0[32] * classes.page_size);
    (conf, target)
}
