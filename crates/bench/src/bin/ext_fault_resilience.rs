//! Extension — **deterministic fault injection vs the resilient covert
//! transport**: both channel families under the fabric's scheduled
//! fault plans ([`gpubox_sim::fault`]), naive pipeline against the
//! hardened one.
//!
//! The paper measures its channels on a healthy DGX-1; at fleet scale,
//! degraded and failing NVLink hardware is the steady state. This bin
//! sweeps **fault intensity × channel family × pipeline**:
//!
//! - fault intensities: healthy baseline, seeded transient stalls,
//!   a degraded link (×8 service cycles over a mid-transmission
//!   window), and the headline case — a **scheduled mid-transmission
//!   link failure** whose reroute changes the timing signature under
//!   the spy's feet;
//! - families: the **NVLink-congestion channel** on the minimal
//!   one-link fabric (2 GPUs, `FabricConfig::nvlink_v1`), where the
//!   failure forces the PCIe root-complex fallback — the worst-case
//!   level shift, every in-window sample ~3–4× the healthy levels —
//!   and the **L2 Prime+Probe channel** on the fabric-enabled DGX-1
//!   (trojan GPU0, spy GPU5, offline phase under the fabric), where
//!   downing link (1,5) reroutes the spy's remote probes mid-stream;
//! - pipelines: **naive** = the plain `transmit_over` with the
//!   per-sample vote and one self-calibrated boundary over the whole
//!   trace, **hardened** = [`transmit_resilient`]: matched filter +
//!   Hamming(7,4) + sequence-numbered CRC frames + fenced-boundary
//!   resync + bounded deterministic-backoff retransmission.
//!
//! The naive pipeline fails *globally*, not just inside the fault
//! window: the mis-levelled in-window samples drag the one
//! self-calibrated decision boundary above the healthy congested
//! level, so every slot of the transmission decodes wrong. The
//! hardened stack fences the outliers out of its calibration, confines
//! the damage to the faulted frames (which fail their CRC), and
//! re-sends them with a growing whole-slot backoff that shifts the
//! retry stream off the recurring fault window.
//!
//! Determinism is asserted as everywhere in this repo: every sweep
//! point runs on both the heap and the linear scheduler and must be
//! bit-identical, and the link-family sweep re-runs through a parallel
//! and a serial [`TrialRunner`] fan-out which must agree bit-for-bit.
//!
//! CI gates:
//! - healthy baseline: both pipelines ≤ 5% BER on both families;
//! - **link failure: the hardened pipeline decodes ≤ 5% BER on both
//!   families while the naive vote pipeline is ≥ 25% on the link
//!   family** (the ISSUE 6 acceptance gate);
//! - the hardened pipeline stays ≤ 5% BER at *every* sweep point;
//! - the link outage actually exercises the fault machinery (reroutes
//!   or PCIe fallbacks observed, retransmissions spent).
//!
//! Usage: `ext_fault_resilience [--payload-bits=N] [--seed=S]`
//! (defaults: 64 bits, seed 0xFA17).

use gpubox_attacks::{
    transmit_over, transmit_resilient, BoundaryPolicy, ChannelParams, Coding, L2SetMedium,
    LinkChannel, LinkCongestionMedium, Pipeline, RetryConfig, TrialRunner,
};
use gpubox_bench::{report, AttackSetup};
use gpubox_sim::{
    FabricConfig, FaultPlan, GpuId, MultiGpuSystem, SchedulerKind, SystemConfig, Topology,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One fault intensity on the sweep. Windows are in slots so both
/// families place the fault mid-transmission regardless of their
/// `slot_cycles`.
#[derive(Debug, Clone, Copy)]
struct FaultCase {
    label: &'static str,
    kind: FaultKind,
    /// The scheduled mid-transmission link failure — the CI-gated
    /// point.
    gated: bool,
}

#[derive(Debug, Clone, Copy)]
enum FaultKind {
    Healthy,
    /// Seeded transient stalls on every hop (per-1024 rate, cycles).
    Stalls { per_1024: u64, cycles: u64 },
    /// Service-cycle multiplier on the target link over the window.
    Degraded { mult: u32, from_slot: u64, until_slot: u64 },
    /// The target link scheduled down over the window.
    Outage { from_slot: u64, until_slot: u64 },
}

impl FaultCase {
    /// Builds the case's plan against `link` with the family's slot
    /// length.
    fn plan(&self, link: u32, slot_cycles: u64, seed: u64) -> FaultPlan {
        match self.kind {
            FaultKind::Healthy => FaultPlan::none(),
            FaultKind::Stalls { per_1024, cycles } => {
                FaultPlan::none().with_stalls(seed ^ 0xFA11, per_1024, cycles)
            }
            FaultKind::Degraded { mult, from_slot, until_slot } => FaultPlan::none()
                .with_degraded(link, from_slot * slot_cycles, until_slot * slot_cycles, mult),
            FaultKind::Outage { from_slot, until_slot } => FaultPlan::none().with_link_down(
                link,
                from_slot * slot_cycles,
                until_slot * slot_cycles,
            ),
        }
    }
}

/// The sweep: intensities ordered from nothing to the headline
/// failure. The fault windows sit in the *tail* of the naive
/// transmission (a 64-bit payload spans slots 16..80 behind the
/// preamble) and inside the hardened round-1 span, so the retry
/// rounds' growing backoff can walk the re-sent frames off the window.
fn fault_cases() -> Vec<FaultCase> {
    vec![
        FaultCase {
            label: "healthy",
            kind: FaultKind::Healthy,
            gated: false,
        },
        FaultCase {
            label: "transient stalls",
            kind: FaultKind::Stalls {
                per_1024: 8,
                cycles: 600,
            },
            gated: false,
        },
        FaultCase {
            label: "degraded link x8",
            kind: FaultKind::Degraded {
                mult: 8,
                from_slot: 56,
                until_slot: 80,
            },
            gated: false,
        },
        FaultCase {
            label: "link outage (gated)",
            kind: FaultKind::Outage {
                from_slot: 56,
                until_slot: 80,
            },
            gated: true,
        },
    ]
}

fn seeded_payload(seed: u64, bits: usize) -> Vec<u8> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..bits).map(|_| (rng.gen::<u32>() & 1) as u8).collect()
}

/// The hardened transport's retransmission policy: small frames to
/// localise fault damage, a backoff (24 slots) close to the fault
/// window's width so successive retries step clear of it quickly.
fn retry_config() -> RetryConfig {
    RetryConfig {
        chunk_bits: 16,
        max_retries: 5,
        backoff_slots: 24,
        min_preamble_matches: 12,
    }
}

/// The hardened receive stack: matched filter + Hamming(7,4) behind a
/// 4-deep interleaver, on the family's boundary policy.
fn hardened_pipeline(policy: BoundaryPolicy) -> Pipeline {
    Pipeline::matched_filter(policy).with_coding(Coding::Hamming74 {
        interleave_depth: 4,
    })
}

/// One sweep point's outcome, compared bit-for-bit across schedulers
/// and fan-outs.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    naive_received: Vec<u8>,
    naive_errors: usize,
    hardened_received: Vec<u8>,
    hardened_errors: usize,
    rounds: usize,
    retransmissions: usize,
    sync_losses: usize,
    resyncs: usize,
    frames_delivered: usize,
    frames_total: usize,
    reroutes: u64,
    pcie_fallbacks: u64,
    degraded_hops: u64,
    transient_stalls: u64,
}

fn link_params() -> ChannelParams {
    ChannelParams {
        spy_gap: 600,
        ..Default::default()
    }
}

/// Runs one link-family sweep point: naive and hardened back to back
/// on fresh single-link fabrics (2 GPUs, both attacker processes on
/// GPU1, buffers homed on GPU0 — every transfer crosses NVLink link 0,
/// and downing it forces the PCIe root-complex fallback).
fn run_link(case: &FaultCase, payload: &[u8], seed: u64, sched: SchedulerKind) -> Outcome {
    let params = link_params();
    let build = || {
        let cfg = SystemConfig::small_test()
            .noiseless()
            .with_seed(seed)
            .with_fabric(FabricConfig::nvlink_v1());
        let mut sys = MultiGpuSystem::new(cfg);
        let trojan = sys.create_process(GpuId::new(1));
        let spy = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(trojan, GpuId::new(0)).unwrap();
        sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
        let tb = sys.malloc_on(trojan, GpuId::new(0), 32 * 4096).unwrap();
        let sb = sys.malloc_on(spy, GpuId::new(0), 8 * 4096).unwrap();
        sys.set_fault_plan(case.plan(0, params.slot_cycles, seed))
            .unwrap();
        let tl: Vec<_> = (0..32).map(|i| tb.offset(i * 4096)).collect();
        let sl: Vec<_> = (0..8).map(|i| sb.offset(i * 4096)).collect();
        (sys, trojan, spy, tl, sl)
    };

    let (mut sys, trojan, spy, tl, sl) = build();
    let medium = LinkCongestionMedium {
        trojan,
        spy,
        channel: LinkChannel {
            trojan_lines: &tl,
            spy_lines: &sl,
            trojan_streams: 2,
        },
    };
    let naive = transmit_over(
        &mut sys,
        &medium,
        payload,
        &params,
        &Pipeline::vote(BoundaryPolicy::Quantile),
        sched,
    )
    .expect("naive link transmission");

    let (mut sys, trojan, spy, tl, sl) = build();
    let medium = LinkCongestionMedium {
        trojan,
        spy,
        channel: LinkChannel {
            trojan_lines: &tl,
            spy_lines: &sl,
            trojan_streams: 2,
        },
    };
    let hardened = transmit_resilient(
        &mut sys,
        &medium,
        payload,
        &params,
        &hardened_pipeline(BoundaryPolicy::Quantile),
        &retry_config(),
        sched,
    )
    .expect("hardened link transmission");
    let f = *sys.stats().fault();
    Outcome {
        naive_received: naive.received,
        naive_errors: naive.bit_errors,
        hardened_received: hardened.received,
        hardened_errors: hardened.bit_errors,
        rounds: hardened.rounds,
        retransmissions: hardened.retransmissions,
        sync_losses: hardened.sync_losses,
        resyncs: hardened.resyncs,
        frames_delivered: hardened.frames_delivered,
        frames_total: hardened.frames_total,
        reroutes: f.reroutes,
        pcie_fallbacks: f.pcie_fallbacks,
        degraded_hops: f.degraded_hops,
        transient_stalls: f.transient_stalls,
    }
}

/// Runs one L2-family sweep point on the fabric-enabled DGX-1 (trojan
/// GPU0, spy GPU5, offline phase run healthy, the fault installed
/// before transmission). The faulted link is (1,5) — the first hop of
/// the spy's canonical 5-1-0 probe route, so the outage reroutes its
/// remote probes mid-stream.
fn run_l2(case: &FaultCase, payload: &[u8], seed: u64, sched: SchedulerKind) -> Outcome {
    let params = ChannelParams::default();
    let link = Topology::dgx1()
        .link_between(GpuId::new(1), GpuId::new(5))
        .expect("DGX-1 has a (1,5) link")
        .0;
    let run = |payload: &[u8], naive: bool| {
        let mut setup = AttackSetup::prepare_fabric(seed, GpuId::new(0), GpuId::new(5));
        let pairs = setup.aligned_pairs(4);
        setup
            .sys
            .set_fault_plan(case.plan(link, params.slot_cycles, seed))
            .unwrap();
        let medium = L2SetMedium {
            trojan: setup.trojan,
            spy: setup.spy,
            pairs: &pairs,
            thresholds: setup.thresholds,
        };
        if naive {
            let rep = transmit_over(
                &mut setup.sys,
                &medium,
                payload,
                &params,
                &Pipeline::vote(BoundaryPolicy::TwoMeans),
                sched,
            )
            .expect("naive L2 transmission");
            (rep.received, rep.bit_errors, None, *setup.sys.stats().fault())
        } else {
            let rep = transmit_resilient(
                &mut setup.sys,
                &medium,
                payload,
                &params,
                &hardened_pipeline(BoundaryPolicy::TwoMeans),
                &retry_config(),
                sched,
            )
            .expect("hardened L2 transmission");
            let f = *setup.sys.stats().fault();
            (rep.received.clone(), rep.bit_errors, Some(rep), f)
        }
    };
    let (naive_received, naive_errors, _, _) = run(payload, true);
    let (hardened_received, hardened_errors, rep, f) = run(payload, false);
    let rep = rep.unwrap();
    Outcome {
        naive_received,
        naive_errors,
        hardened_received,
        hardened_errors,
        rounds: rep.rounds,
        retransmissions: rep.retransmissions,
        sync_losses: rep.sync_losses,
        resyncs: rep.resyncs,
        frames_delivered: rep.frames_delivered,
        frames_total: rep.frames_total,
        reroutes: f.reroutes,
        pcie_fallbacks: f.pcie_fallbacks,
        degraded_hops: f.degraded_hops,
        transient_stalls: f.transient_stalls,
    }
}

fn main() {
    let mut payload_bits = 64usize;
    let mut seed = 0xFA17u64;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--payload-bits=") {
            payload_bits = v.parse().expect("--payload-bits=N");
        } else if let Some(v) = arg.strip_prefix("--seed=") {
            seed = v.parse().expect("--seed=S");
        }
    }
    let payload = seeded_payload(seed, payload_bits);
    let cases = fault_cases();

    report::header(
        "Extension — fault injection vs the resilient covert transport",
        "scheduled link faults x {L2, link} family x {naive, MF+ECC+retry} pipeline",
    );

    // --- link family under every fault case, both schedulers ----------
    let mut link: Vec<Outcome> = Vec::new();
    for c in &cases {
        let heap = run_link(c, &payload, seed, SchedulerKind::Heap);
        let linear = run_link(c, &payload, seed, SchedulerKind::Linear);
        assert_eq!(heap, linear, "link schedulers diverged under [{}]", c.label);
        link.push(heap);
    }

    // The link sweep again through parallel vs serial fan-out.
    let fan = |r: TrialRunner| {
        r.run(cases.len(), |t| {
            run_link(&cases[t.index], &payload, seed, SchedulerKind::Heap)
        })
    };
    let par = fan(TrialRunner::new(seed));
    let ser = fan(TrialRunner::serial(seed));
    assert_eq!(par, ser, "parallel fan-out must be bit-identical to serial");
    assert_eq!(par, link, "fan-out must reproduce the sweep outcomes");

    // --- L2 family under every fault case, both schedulers -------------
    let l2_cases: Vec<&FaultCase> = cases.iter().collect();
    let mut l2: Vec<Outcome> = Vec::new();
    for c in &l2_cases {
        let heap = run_l2(c, &payload, seed, SchedulerKind::Heap);
        let linear = run_l2(c, &payload, seed, SchedulerKind::Linear);
        assert_eq!(heap, linear, "L2 schedulers diverged under [{}]", c.label);
        l2.push(heap);
    }

    // --- gates (collected; asserted after the report prints) -----------
    let ber = |e: usize| e as f64 / payload.len() as f64;
    let mut gate_failures: Vec<String> = Vec::new();
    let mut gate = |ok: bool, msg: String| {
        if !ok {
            gate_failures.push(msg);
        }
    };
    for (c, o) in cases.iter().zip(&link) {
        gate(
            ber(o.hardened_errors) <= 0.05,
            format!(
                "[link/{}] hardened pipeline must stay <= 5% BER: {:.1}%",
                c.label,
                100.0 * ber(o.hardened_errors)
            ),
        );
        if matches!(c.kind, FaultKind::Healthy) {
            gate(
                ber(o.naive_errors) <= 0.05,
                format!(
                    "[link/healthy] naive baseline must decode: {:.1}%",
                    100.0 * ber(o.naive_errors)
                ),
            );
        }
        if c.gated {
            gate(
                ber(o.naive_errors) >= 0.25,
                format!(
                    "[link/{}] the naive vote pipeline must collapse: {:.1}%",
                    c.label,
                    100.0 * ber(o.naive_errors)
                ),
            );
            gate(
                o.pcie_fallbacks + o.reroutes > 0,
                format!("[link/{}] the outage must actually disturb the route", c.label),
            );
            gate(
                o.retransmissions > 0 && o.rounds > 1,
                format!("[link/{}] surviving the outage must cost retries", c.label),
            );
        }
    }
    for (c, o) in l2_cases.iter().zip(&l2) {
        gate(
            ber(o.hardened_errors) <= 0.05,
            format!(
                "[L2/{}] hardened pipeline must stay <= 5% BER: {:.1}%",
                c.label,
                100.0 * ber(o.hardened_errors)
            ),
        );
        if matches!(c.kind, FaultKind::Healthy) {
            gate(
                ber(o.naive_errors) <= 0.05,
                format!(
                    "[L2/healthy] naive baseline must decode: {:.1}%",
                    100.0 * ber(o.naive_errors)
                ),
            );
        }
        if c.gated {
            gate(
                o.reroutes + o.pcie_fallbacks > 0,
                format!("[L2/{}] the outage must reroute the spy's probes", c.label),
            );
        }
    }

    // --- report --------------------------------------------------------
    println!(
        "\n{:>8} | {:>19} | {:>11} | {:>14} | {:>13} | {:>13}",
        "family", "fault", "naive BER", "hardened BER", "retx/rounds", "fault events"
    );
    println!(
        "{}-+-{}-+-{}-+-{}-+-{}-+-{}",
        "-".repeat(8),
        "-".repeat(19),
        "-".repeat(11),
        "-".repeat(14),
        "-".repeat(13),
        "-".repeat(13)
    );
    let row = |family: &str, label: &str, o: &Outcome| {
        let events = o.reroutes + o.pcie_fallbacks + o.degraded_hops + o.transient_stalls;
        println!(
            "{:>8} | {:>19} | {:>11} | {:>14} | {:>13} | {:>13}",
            family,
            label,
            format!("{:.1}%", 100.0 * ber(o.naive_errors)),
            format!("{:.1}%", 100.0 * ber(o.hardened_errors)),
            format!("{}/{}", o.retransmissions, o.rounds),
            events,
        );
    };
    for (c, o) in cases.iter().zip(&link) {
        row("link", c.label, o);
    }
    for (c, o) in l2_cases.iter().zip(&l2) {
        row("L2", c.label, o);
    }

    let gated = cases.iter().position(|c| c.gated).unwrap();
    println!(
        "\ngated link failure: naive {:.1}% vs hardened {:.1}% BER \
         ({} of {} frames delivered over {} rounds, {} sync losses, {} resyncs)",
        100.0 * ber(link[gated].naive_errors),
        100.0 * ber(link[gated].hardened_errors),
        link[gated].frames_delivered,
        link[gated].frames_total,
        link[gated].rounds,
        link[gated].sync_losses,
        link[gated].resyncs,
    );
    println!(
        "\nall sweep points are bit-identical across heap/linear schedulers\n\
         and serial/parallel fan-out (asserted). The naive pipeline does\n\
         not merely lose the slots inside the fault window: the window's\n\
         mis-levelled samples (PCIe round-trips once the one-link fabric\n\
         loses its link) drag its single self-calibrated decision\n\
         boundary above the healthy congested level, so the whole\n\
         transmission decodes wrong — a 30%-wide outage costs ~50% BER,\n\
         and even scattered transient stalls cost 20-30%. The hardened\n\
         stack survives every plan three ways, all deterministic:\n\
         outlier-fenced boundary recalibration confines the damage to\n\
         the faulted slots, the per-frame CRC + sequence numbers turn\n\
         those slots into identified missing frames instead of silent\n\
         corruption, and the whole-slot backoff walks each\n\
         retransmission off the recurring fault window. The L2 rows\n\
         split the taxonomy: the DGX-1 reroute around link (1,5) is\n\
         hop-count-neutral (5-1-0 -> 5-4-0), so the cache channel rides\n\
         through the outage even naively — the fault counters prove the\n\
         probes moved — while stalls, which no reroute can dodge, break\n\
         the naive decode on both families and only the retry stack\n\
         recovers."
    );
    assert!(
        gate_failures.is_empty(),
        "fault-resilience gates failed:\n  {}",
        gate_failures.join("\n  ")
    );
}
