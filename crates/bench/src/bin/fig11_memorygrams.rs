//! Fig. 11 — memorygrams of the six victim applications.
//!
//! Records one memorygram per workload over 256 monitored sets and renders
//! them as ASCII intensity images: each application leaves a distinct
//! footprint.

use gpubox_attacks::side::{record_memorygram, RecorderConfig};
use gpubox_bench::{report, setup::victim_with_duration, SideChannelSetup};
use gpubox_sim::GpuId;
use gpubox_workloads::standard_suite;

fn main() {
    report::header(
        "Fig. 11 — memorygrams of 6 applications (256 monitored sets)",
        "Sec. V-A: each victim leaves a unique memory footprint",
    );
    let mut setup = SideChannelSetup::prepare(111, 256);
    for w in standard_suite() {
        let victim = setup.sys.create_process(GpuId::new(0));
        let (agent, duration) = victim_with_duration(&mut setup.sys, victim, w.as_ref());
        setup.sys.flush_l2(GpuId::new(0));
        let gram = record_memorygram(
            &mut setup.sys,
            setup.spy,
            &setup.monitored,
            setup.thresholds,
            &RecorderConfig {
                duration,
                sweep_gap: 0,
            },
            vec![Box::new(agent)],
        )
        .expect("memorygram");
        println!(
            "\n--- {} ---  ({} sweeps x {} sets, {} total misses)",
            w.name(),
            gram.num_sweeps(),
            gram.num_sets(),
            gram.total_misses()
        );
        print!("{}", gram.to_ascii(18, 72));
    }
}
