//! Table II + Fig. 13 — MLP hidden-layer extraction via miss counts.
//!
//! Trains the MLP victim at hidden widths 64/128/256/512 while the spy
//! monitors 1024 cache sets; the average misses per set grows monotonically
//! with width (paper: 5653 / 6846 / 8744 / 10197), separating the
//! configurations.

use gpubox_attacks::side::{record_memorygram, summarize_mlp_gram, RecorderConfig};
use gpubox_bench::{report, setup::victim_with_duration, SideChannelSetup};
use gpubox_sim::GpuId;
use gpubox_workloads::MlpTraining;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    neurons: usize,
    avg_misses_per_set: f64,
    total_misses: u64,
    paper_avg: u64,
}

fn main() {
    report::header(
        "Table II / Fig. 13 — MLP hidden-layer width vs. cache misses (1024 monitored sets)",
        "Sec. V-B: avg misses 5653/6846/8744/10197 for 64/128/256/512 neurons",
    );
    let mut setup = SideChannelSetup::prepare(1313, 1024);
    let paper = [(64usize, 5653u64), (128, 6846), (256, 8744), (512, 10197)];
    let mut rows = Vec::new();
    for &(neurons, paper_avg) in &paper {
        let victim = setup.sys.create_process(GpuId::new(0));
        let w = MlpTraining::with_hidden(neurons);
        let (agent, duration) = victim_with_duration(&mut setup.sys, victim, &w);
        setup.sys.flush_l2(GpuId::new(0));
        let gram = record_memorygram(
            &mut setup.sys,
            setup.spy,
            &setup.monitored,
            setup.thresholds,
            &RecorderConfig {
                duration,
                sweep_gap: 0,
            },
            vec![Box::new(agent)],
        )
        .expect("memorygram");
        let stats = summarize_mlp_gram(&gram);
        rows.push(Row {
            neurons,
            avg_misses_per_set: stats.avg_misses_per_set,
            total_misses: stats.total_misses,
            paper_avg,
        });
    }

    println!();
    report::table3(
        ("neurons", "avg misses/set", "paper avg"),
        &rows
            .iter()
            .map(|r| {
                (
                    r.neurons,
                    format!("{:.1}", r.avg_misses_per_set),
                    r.paper_avg,
                )
            })
            .collect::<Vec<_>>(),
    );

    println!("\nFig. 13-style intensity (avg misses/set, scaled):");
    let max = rows
        .iter()
        .map(|r| r.avg_misses_per_set)
        .fold(0.0, f64::max);
    for r in &rows {
        println!(
            "{:>4} neurons | {}",
            r.neurons,
            report::bar(r.avg_misses_per_set, max, 50)
        );
    }
    let monotone = rows
        .windows(2)
        .all(|w| w[1].avg_misses_per_set > w[0].avg_misses_per_set);
    println!("\nshape check: misses monotone in hidden width = {monotone} (paper: yes)");
    report::write_json("table2_mlp_misses", &rows);
}
