//! Ablation — Sec. VI noise mitigation.
//!
//! Measures covert-channel error in three conditions: quiet GPU, a noisy
//! co-located tenant hammering the target L2, and the same tenant locked
//! out by saturating SM shared memory (the leftover-policy mitigation).

use gpubox_attacks::covert::bits_from_bytes;
use gpubox_attacks::mitigation::{typical_noise_kernel, ExclusiveOccupancy};
use gpubox_attacks::ChannelParams;
use gpubox_bench::{report, AttackSetup};
use gpubox_sim::{Agent, Engine, GpuId, NoiseAgent, NoiseConfig};

/// Thread blocks of the noise tenant's kernel: each is an independent
/// engine agent hammering the tenant's buffer, like a real grid.
const NOISE_BLOCKS: usize = 8;

fn run_with_noise(setup: &mut AttackSetup, noise_active: bool, payload: &[u8]) -> f64 {
    let pairs = setup.aligned_pairs(4);
    // The noise tenant owns a 2 MiB buffer on the target GPU.
    let noise_pid = setup.sys.create_process(GpuId::new(0));
    let nbuf = setup
        .sys
        .malloc_on(noise_pid, GpuId::new(0), 2 << 20)
        .expect("noise buffer");
    let blocks: Vec<Box<dyn Agent>> = (0..NOISE_BLOCKS)
        .map(|b| {
            let mut a = NoiseAgent::new(
                noise_pid,
                nbuf,
                (2 << 20) / 128,
                128,
                NoiseConfig {
                    burst_len: 64,
                    idle_between_bursts: 1_500,
                    seed: 5 + b as u64,
                },
            );
            if !noise_active {
                a.deactivate();
            }
            Box::new(a) as Box<dyn Agent>
        })
        .collect();
    transmit_with_extra(setup, &pairs, payload, blocks)
}

/// Like `gpubox_attacks::transmit`, but with an extra background agent —
/// composed from the same public agent types.
fn transmit_with_extra(
    setup: &mut AttackSetup,
    pairs: &[gpubox_attacks::SetPair],
    payload: &[u8],
    extra: Vec<Box<dyn Agent>>,
) -> f64 {
    use gpubox_attacks::covert::{
        decode_trace, stripe_bits, unstripe_bits, SpyProbeAgent, TrojanAgent,
    };
    let params = ChannelParams::default();
    let k = pairs.len();
    let stripes = stripe_bits(payload, k);
    let max_frame = stripes.iter().map(Vec::len).max().unwrap_or(0) + params.preamble_bits;
    let listen = (max_frame as u64 + 4) * params.slot_cycles;
    let mut eng = Engine::new(&mut setup.sys);
    let mut traces = Vec::new();
    for (i, pair) in pairs.iter().enumerate() {
        let frame = params.frame(&stripes[i]);
        let trojan = TrojanAgent::new(setup.trojan, &pair.trojan, frame, &params);
        let spy = SpyProbeAgent::new(setup.spy, &pair.spy, setup.thresholds, &params, listen);
        traces.push(spy.trace());
        eng.add_agent(Box::new(spy), 0);
        eng.add_agent(Box::new(trojan), params.slot_cycles / 2 + 37 * i as u64);
    }
    for a in extra {
        eng.add_agent(a, 0);
    }
    eng.run(listen + 16 * params.slot_cycles)
        .expect("engine run");
    let decoded: Vec<Vec<u8>> = traces
        .iter()
        .enumerate()
        .map(|(i, t)| decode_trace(&t.samples(), &params, stripes[i].len()).payload)
        .collect();
    let received = unstripe_bits(&decoded, payload.len());
    let errors = received.iter().zip(payload).filter(|(a, b)| a != b).count();
    errors as f64 / payload.len() as f64
}

fn main() {
    report::header(
        "Ablation — Sec. VI noise mitigation (SM shared-memory saturation)",
        "noisy tenant vs. tenant locked out by idle 32 KiB blocks",
    );
    let payload = bits_from_bytes(b"noise mitigation ablation: the quick brown fox 0123456789");

    let quiet = {
        let mut setup = AttackSetup::prepare(600);
        run_with_noise(&mut setup, false, &payload)
    };
    let noisy = {
        let mut setup = AttackSetup::prepare(600);
        run_with_noise(&mut setup, true, &payload)
    };
    let mitigated = {
        let mut setup = AttackSetup::prepare(600);
        // Saturate GPU0's SMs; verify the noise kernel cannot launch, so
        // its agent stays inactive.
        let occ =
            ExclusiveOccupancy::establish(&mut setup.sys, GpuId::new(0), 32).expect("saturate SMs");
        let blocked = occ.excludes(&setup.sys, &typical_noise_kernel());
        assert!(blocked, "mitigation must block the noise kernel");
        let err = run_with_noise(&mut setup, !blocked, &payload);
        occ.release(&mut setup.sys);
        err
    };

    let rows = vec![
        ("quiet GPU".to_string(), format!("{:.2}%", quiet * 100.0)),
        ("noisy tenant".to_string(), format!("{:.2}%", noisy * 100.0)),
        (
            "noisy tenant + mitigation".to_string(),
            format!("{:.2}%", mitigated * 100.0),
        ),
    ];
    report::table2("condition", "bit error rate", &rows);
    println!(
        "\nthe mitigation launches idle thread blocks that consume the other\n\
         32 KiB of per-SM shared memory, so the leftover policy cannot place\n\
         the tenant's blocks; channel error returns to the quiet level."
    );
}
