//! Fleet-runner throughput rung: shared-nothing parallel stepping.
//!
//! Runs the same fleet — pack placement at high offered load — to the
//! horizon with 1 worker thread and with `--threads=K` workers, and
//! reports node-epochs stepped per second and simulated accesses per
//! second (medians across reruns).  The two runs must decode to a
//! byte-identical exposure table: parallelism is a wall-clock lever
//! only, never a semantic one, so the speedup column is meaningful.
//!
//! Usage: `bench_fleet [reruns] [--nodes=N] [--threads=K] [--horizon=C]`
//! (defaults: 3 reruns, 64 nodes, 4 threads, 1.5M cycles).

use std::time::Instant;

use gpubox_bench::report;
use gpubox_sim::{FleetConfig, FleetReport, FleetRunner, Pack};

fn median_f64(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

fn build(nodes: u32, horizon: u64, threads: usize) -> FleetRunner {
    let mut cfg = FleetConfig::new(nodes, 77).with_target_utilization(0.75);
    cfg.horizon = horizon;
    cfg.threads = threads;
    FleetRunner::new(cfg, Box::new(Pack))
}

fn timed_run(nodes: u32, horizon: u64, threads: usize) -> (FleetReport, f64) {
    let runner = build(nodes, horizon, threads);
    let t0 = Instant::now();
    let report = runner.run();
    (report, t0.elapsed().as_secs_f64())
}

#[derive(Debug, serde::Serialize)]
struct Row {
    threads: usize,
    wall_ms_median: f64,
    node_epochs_per_sec: f64,
    accesses_per_sec: f64,
}

#[derive(Debug, serde::Serialize)]
struct Artefact {
    nodes: u32,
    horizon: u64,
    reruns: usize,
    host_cpus: usize,
    rows: Vec<Row>,
    parallel_speedup: f64,
}

fn main() {
    let mut reruns: usize = 3;
    let mut nodes: u32 = 64;
    let mut threads: usize = 4;
    let mut horizon: u64 = 1_500_000;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--nodes=") {
            nodes = v.parse().expect("--nodes=N");
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            threads = v.parse().expect("--threads=K");
        } else if let Some(v) = arg.strip_prefix("--horizon=") {
            horizon = v.parse().expect("--horizon=C");
        } else {
            reruns = arg.parse().expect("reruns must be a number");
        }
    }
    assert!(reruns >= 1 && threads >= 1);

    report::header(
        "Fleet-runner throughput: 1 worker vs shared-nothing parallel stepping",
        "same fleet, same decoded exposure table; threads only move wall-clock",
    );
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "fleet: {nodes} nodes x 4 GPU slots, horizon {horizon} cycles, {reruns} rerun(s), \
         {host_cpus} host cpu(s)\n"
    );

    let mut rows = Vec::new();
    let mut walls = Vec::new();
    for &t in &[1usize, threads] {
        let mut wall_s = Vec::new();
        let mut last = None;
        for _ in 0..reruns {
            let (r, w) = timed_run(nodes, horizon, t);
            wall_s.push(w);
            last = Some(r);
        }
        let r = last.unwrap();
        let wall = median_f64(&mut wall_s);
        rows.push(Row {
            threads: t,
            wall_ms_median: wall * 1e3,
            node_epochs_per_sec: r.exposure.node_epochs as f64 / wall,
            accesses_per_sec: r.exposure.accesses as f64 / wall,
        });
        walls.push((t, wall, r));
    }

    // Determinism ride-along: the parallel run must decode identically.
    let (_, _, serial) = &walls[0];
    let (_, _, parallel) = &walls[1];
    assert_eq!(
        serial.exposure_line("row"),
        parallel.exposure_line("row"),
        "thread count changed the decoded exposure table"
    );

    let speedup = walls[0].1 / walls[1].1;
    let display: Vec<(String, String, String, String)> = rows
        .iter()
        .map(|r| {
            (
                format!("{} thread(s)", r.threads),
                format!("{:.1} ms", r.wall_ms_median),
                format!("{:.1} k node-epochs/s", r.node_epochs_per_sec / 1e3),
                format!("{:.2} M accesses/s", r.accesses_per_sec / 1e6),
            )
        })
        .collect();
    report::table4(
        ("configuration", "wall (median)", "step rate", "access rate"),
        &display
            .iter()
            .map(|(a, b, c, d)| (a.as_str(), b.as_str(), c.as_str(), d.as_str()))
            .collect::<Vec<_>>(),
    );
    println!(
        "\nparallel speedup at {threads} threads on {host_cpus} host cpu(s): {speedup:.2}x \
         (exposure tables bit-identical, asserted)"
    );

    report::write_json(
        "BENCH_fleet",
        &Artefact {
            nodes,
            horizon,
            reruns,
            host_cpus,
            rows,
            parallel_speedup: speedup,
        },
    );
}
