//! Table I — L2 cache architecture derived from user space.

use gpubox_attacks::cache_re::derive_cache_architecture;
use gpubox_attacks::{Locality, Thresholds};
use gpubox_bench::{report, AttackSetup};
use gpubox_sim::{GpuId, ProcessCtx};

fn main() {
    report::header(
        "Table I — L2 cache architecture (reverse engineered)",
        "Sec. III: 4 MiB, 2048 sets, 128 B lines, 16 ways, LRU",
    );
    let mut setup = AttackSetup::prepare(2024);
    let thr: Thresholds = setup.thresholds;
    let capacity = setup.sys.config().cache.size_bytes;
    let ways = setup.sys.config().cache.ways as usize;

    // A conflict superset from the classified pages: 24 same-set lines.
    let class0 = &setup.trojan_classes.classes[0];
    assert!(class0.len() >= 25, "need 25 pages in class 0");
    let base = setup.trojan_classes.base;
    let page = setup.trojan_classes.page_size;
    let conflicts: Vec<_> = class0[..24]
        .iter()
        .map(|&p| base.offset(p * page))
        .collect();
    let target = base.offset(class0[24] * page);

    let mut ctx = ProcessCtx::new(&mut setup.sys, setup.trojan, 0);
    let fresh = ctx
        .malloc_on(GpuId::new(0), 1024 * 1024)
        .expect("fresh buffer");
    let rep = derive_cache_architecture(
        &mut ctx,
        fresh,
        target,
        &conflicts,
        capacity,
        &thr,
        Locality::Local,
    )
    .expect("cache reverse engineering");

    let rows = vec![
        (
            "L2 cache size".to_string(),
            format!("{} MiB", rep.capacity / 1024 / 1024),
        ),
        ("Number of sets".to_string(), rep.num_sets.to_string()),
        (
            "Cache line size".to_string(),
            format!("{} B", rep.line_size),
        ),
        ("Cache lines per set".to_string(), rep.ways.to_string()),
        (
            "Replacement policy".to_string(),
            rep.replacement.to_string(),
        ),
    ];
    report::table2("attribute", "derived value", &rows);

    let paper = [
        ("4 MiB", "4 MiB"),
        ("2048", "2048"),
        ("128 B", "128 B"),
        ("16", "16"),
        ("LRU", "LRU"),
    ];
    let ok = rep.capacity == 4 * 1024 * 1024
        && rep.num_sets == 2048
        && rep.line_size == 128
        && rep.ways == ways
        && rep.replacement.to_string() == "LRU";
    println!(
        "\npaper Table I match: {}",
        if ok { "EXACT" } else { "MISMATCH" }
    );
    let _ = paper;
    report::write_json("table1_cache_re", &rep);
}
