//! Eviction-set discovery rung: Algorithm 1 vs the group-testing scan.
//!
//! Classifies the standard 16 MiB attack buffer on a DGX-1 with both
//! page classifiers — the faithful serial pointer-chase
//! ([`classify_pages`]) and the warp-parallel group-testing scan
//! ([`classify_pages_fast`]) — locally and over NVLink, and reports
//! simulated accesses-to-converge, classification throughput
//! (sets/second of host wall-clock) and the end-to-end
//! [`AttackSetup`] prepare time (old-style serial offline phase, the
//! production fast phase, and a cache-hit re-prepare).
//!
//! This binary is a CI gate, not just a report:
//!
//! - both classifiers must produce **identical** page classes, and the
//!   fast one must pass the simulator's address-oracle audit;
//! - the fast path must converge in at most [`MAX_FAST_ACCESSES`]
//!   simulated accesses and at least [`MIN_ACCESS_RATIO`]× fewer than
//!   Algorithm 1, per locality;
//! - a cache-hit prepare must skip derivation entirely.
//!
//! Usage: `bench_discovery [trials]` (default 3; seeds vary per trial).

use std::time::Instant;

use gpubox_attacks::timing_re::measure_timing;
use gpubox_attacks::{
    classify_pages, classify_pages_fast, verify_classes_against_oracle, Locality, OfflineCache,
    PageClasses, ScanConfig, Thresholds,
};
use gpubox_bench::{report, AttackSetup, ATTACK_BUFFER_BYTES};
use gpubox_sim::{GpuId, MultiGpuSystem, ProcessCtx, SystemConfig};

/// Gate: minimum ratio of Algorithm-1 accesses to group-testing accesses.
const MIN_ACCESS_RATIO: f64 = 5.0;

/// Gate: ceiling on the fast path's simulated accesses for one 16 MiB
/// buffer classification (256 pages, 4 alignment classes).
const MAX_FAST_ACCESSES: u64 = 40_000;

#[derive(Debug, serde::Serialize)]
struct Row {
    locality: &'static str,
    classifier: &'static str,
    accesses_median: u64,
    wall_ms_median: f64,
    sets_per_sec: f64,
}

#[derive(Debug, serde::Serialize)]
struct PrepareRow {
    flavor: &'static str,
    wall_ms: f64,
    offline_cached: bool,
}

#[derive(Debug, serde::Serialize)]
struct Artefact {
    rows: Vec<Row>,
    access_ratio_local: f64,
    access_ratio_remote: f64,
    min_access_ratio_gate: f64,
    max_fast_accesses_gate: u64,
    prepare: Vec<PrepareRow>,
}

/// One classification of the standard buffer on a fresh DGX-1. Returns
/// the classes, total simulated accesses and host wall-clock seconds.
fn classify_run(fast: bool, remote: bool, seed: u64) -> (PageClasses, u64, f64) {
    let cfg = SystemConfig::dgx1().with_seed(seed);
    let mut sys = MultiGpuSystem::new(cfg);
    let home = GpuId::new(0);
    let (pid, loc) = if remote {
        let pid = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(pid, home).expect("peer access");
        (pid, Locality::Remote)
    } else {
        (sys.create_process(home), Locality::Local)
    };
    let page = sys.config().page_size;
    let line = sys.config().cache.line_size;
    let ways = sys.config().cache.ways as usize;
    let thr = Thresholds::paper_defaults();
    let scan = ScanConfig::classify_default();
    let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
    let buf = ctx.malloc_on(home, ATTACK_BUFFER_BYTES).unwrap();
    let t0 = Instant::now();
    let classes = if fast {
        classify_pages_fast(
            &mut ctx,
            buf,
            ATTACK_BUFFER_BYTES,
            page,
            line,
            ways,
            &thr,
            loc,
            &scan,
        )
    } else {
        classify_pages(
            &mut ctx,
            buf,
            ATTACK_BUFFER_BYTES,
            page,
            line,
            ways,
            &thr,
            loc,
            &scan,
        )
    }
    .expect("classification");
    let wall = t0.elapsed().as_secs_f64();
    let accesses = ctx.system().stats().total().issued_accesses;
    let num_pages = ATTACK_BUFFER_BYTES / page;
    verify_classes_against_oracle(&sys, pid, &classes, num_pages).expect("oracle audit");
    (classes, accesses, wall)
}

fn median_u64(xs: &mut [u64]) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn median_f64(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// The pre-cache offline phase, timed end to end: timing RE + two serial
/// Algorithm-1 classifications, exactly what `AttackSetup::prepare` did
/// before the group-testing scan landed.
fn old_style_prepare(seed: u64) -> f64 {
    let t0 = Instant::now();
    let mut sys = MultiGpuSystem::new(SystemConfig::dgx1().with_seed(seed));
    let timing = measure_timing(&mut sys, GpuId::new(0), GpuId::new(1), 48).expect("timing");
    let trojan = sys.create_process(GpuId::new(0));
    let spy = sys.create_process(GpuId::new(1));
    sys.enable_peer_access(spy, GpuId::new(0)).expect("peer");
    let page = sys.config().page_size;
    let line = sys.config().cache.line_size;
    let ways = sys.config().cache.ways as usize;
    let scan = ScanConfig::classify_default();
    for (pid, loc) in [(trojan, Locality::Local), (spy, Locality::Remote)] {
        let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
        let buf = ctx.malloc_on(GpuId::new(0), ATTACK_BUFFER_BYTES).unwrap();
        classify_pages(
            &mut ctx,
            buf,
            ATTACK_BUFFER_BYTES,
            page,
            line,
            ways,
            &timing.thresholds,
            loc,
            &scan,
        )
        .expect("classification");
    }
    t0.elapsed().as_secs_f64()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(3);
    report::header(
        "Eviction-set discovery at production speed",
        "Alg. 1 serial scan vs group-testing scan (Vila et al. S&P'19 idiom)",
    );
    println!(
        "{trials} trials per point, 16 MiB buffer (256 pages) on a DGX-1;\n\
         gates: identical classes, oracle audit, >= {MIN_ACCESS_RATIO}x fewer accesses,\n\
         fast path <= {MAX_FAST_ACCESSES} accesses\n"
    );

    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    let mut gate_failures: Vec<String> = Vec::new();
    for (remote, loc_name) in [(false, "local"), (true, "remote (NVLink)")] {
        let mut acc = [Vec::new(), Vec::new()];
        let mut wall = [Vec::new(), Vec::new()];
        let mut num_sets = 0usize;
        for t in 0..trials {
            let seed = 0xD15C + t as u64;
            let (classic, ca, cw) = classify_run(false, remote, seed);
            let (fast, fa, fw) = classify_run(true, remote, seed);
            assert_eq!(
                classic.classes, fast.classes,
                "classifiers diverge ({loc_name}, seed {seed})"
            );
            num_sets = classic.classes.len() * classic.lines_per_page() as usize;
            acc[0].push(ca);
            acc[1].push(fa);
            wall[0].push(cw);
            wall[1].push(fw);
        }
        for (i, name) in [(0usize, "Algorithm 1"), (1, "group testing")] {
            let am = median_u64(&mut acc[i]);
            let wm = median_f64(&mut wall[i]);
            rows.push(Row {
                locality: loc_name,
                classifier: name,
                accesses_median: am,
                wall_ms_median: wm * 1e3,
                sets_per_sec: num_sets as f64 / wm,
            });
        }
        let ratio = rows[rows.len() - 2].accesses_median as f64
            / rows[rows.len() - 1].accesses_median as f64;
        ratios.push(ratio);
        let fast_accesses = rows[rows.len() - 1].accesses_median;
        if ratio < MIN_ACCESS_RATIO {
            gate_failures.push(format!(
                "{loc_name}: access ratio {ratio:.1}x below the {MIN_ACCESS_RATIO}x gate"
            ));
        }
        if fast_accesses > MAX_FAST_ACCESSES {
            gate_failures.push(format!(
                "{loc_name}: fast path took {fast_accesses} accesses (gate {MAX_FAST_ACCESSES})"
            ));
        }
    }

    report::table4(
        ("locality", "classifier", "sim accesses (median)", "sets/s (host)"),
        &rows
            .iter()
            .map(|r| {
                (
                    r.locality,
                    r.classifier,
                    format!("{}", r.accesses_median),
                    format!("{:.0}", r.sets_per_sec),
                )
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\naccess ratio: {:.1}x local, {:.1}x remote (gate >= {MIN_ACCESS_RATIO}x)",
        ratios[0], ratios[1]
    );

    // End-to-end offline-phase timings.
    let seed = 0x0FF1;
    let old_ms = old_style_prepare(seed) * 1e3;
    let cache = OfflineCache::new();
    let t0 = Instant::now();
    let fresh = AttackSetup::prepare_with_cache(
        SystemConfig::dgx1().with_seed(seed),
        GpuId::new(0),
        GpuId::new(1),
        Some(&cache),
    );
    let fresh_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t0 = Instant::now();
    let hit = AttackSetup::prepare_with_cache(
        SystemConfig::dgx1().with_seed(seed),
        GpuId::new(0),
        GpuId::new(1),
        Some(&cache),
    );
    let hit_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert!(!fresh.offline_cached, "first prepare must derive");
    assert!(hit.offline_cached, "second prepare must reuse the cache");
    assert_eq!(
        fresh.trojan_classes.classes, hit.trojan_classes.classes,
        "cache returned different classes"
    );

    let prepare = vec![
        PrepareRow {
            flavor: "old (serial Alg. 1)",
            wall_ms: old_ms,
            offline_cached: false,
        },
        PrepareRow {
            flavor: "fast (group testing)",
            wall_ms: fresh_ms,
            offline_cached: false,
        },
        PrepareRow {
            flavor: "cache hit",
            wall_ms: hit_ms,
            offline_cached: true,
        },
    ];
    println!("\nend-to-end AttackSetup::prepare (timing RE + offline phase):");
    report::table3(
        ("flavor", "wall ms", "cached"),
        &prepare
            .iter()
            .map(|p| (p.flavor, format!("{:.1}", p.wall_ms), p.offline_cached))
            .collect::<Vec<_>>(),
    );

    report::write_json(
        "BENCH_discovery",
        &Artefact {
            rows,
            access_ratio_local: ratios[0],
            access_ratio_remote: ratios[1],
            min_access_ratio_gate: MIN_ACCESS_RATIO,
            max_fast_accesses_gate: MAX_FAST_ACCESSES,
            prepare,
        },
    );
    assert!(
        gate_failures.is_empty(),
        "discovery gates failed:\n  {}",
        gate_failures.join("\n  ")
    );
    println!("\nall discovery gates passed");
}
