//! Extension — multi-tenant noise scaling on the heap-scheduled engine.
//!
//! The paper's experiments run two malicious agents (trojan + spy) and at
//! most a handful of background tenants. A production multi-GPU box hosts
//! *many* tenants: this sweep runs a spy probing a monitored set while
//! 8–32 concurrent tenants (workload trace replays + bursty noise
//! kernels) contend on the same L2 — the regime the engine's binary-heap
//! event queue and zero-allocation op protocol were built for (the old
//! per-op-allocating engine made the 32-tenant sweep impractical).
//!
//! Every configuration is executed twice, once forced onto the cached-min
//! linear scheduler and once onto the heap event queue, on identically
//! seeded systems; the run asserts the two interleavings are
//! **bit-identical** (same spy samples, same statistics, same final
//! clock) and reports host-side throughput for both, so the scheduler is
//! a pure performance choice, never a semantics choice.
//!
//! Usage: `ext_multi_tenant_noise [tenant counts...] [--cycles=N]`
//! (defaults: `8 16 24 32`, 3,000,000 cycles; CI smoke passes `8
//! --cycles=400000`).

use gpubox_attacks::covert::SpyProbeAgent;
use gpubox_attacks::{ChannelParams, EvictionSet, Thresholds};
use gpubox_bench::report;
use gpubox_sim::{
    Agent, Engine, GpuId, GpuStats, MultiGpuSystem, NoiseAgent, NoiseConfig, SchedulerKind,
    SystemConfig, VirtAddr,
};
use gpubox_workloads::{agent_for, Histogram, VectorAdd, Workload};
use std::time::Instant;

/// Outcome of one scheduler run, compared bit-for-bit across schedulers.
#[derive(Debug, PartialEq)]
struct RunFingerprint {
    end_clock: u64,
    totals: GpuStats,
    spy_samples: Vec<(u64, u32, u32, u32)>,
}

struct RunOutcome {
    fingerprint: RunFingerprint,
    wall_secs: f64,
}

/// Builds the shared scenario (spy + `tenants` background agents) on a
/// fresh seeded system and runs it to `cycles` under `kind`.
fn run_once(tenants: usize, cycles: u64, kind: SchedulerKind, seed: u64) -> RunOutcome {
    let mut sys = MultiGpuSystem::new(SystemConfig::small_test().with_seed(seed));

    // Spy on GPU1 probes 16 lines of a remote GPU0 buffer warp-parallel.
    let spy_pid = sys.create_process(GpuId::new(1));
    sys.enable_peer_access(spy_pid, GpuId::new(0)).unwrap();
    let spy_buf = sys.malloc_on(spy_pid, GpuId::new(0), 64 * 4096).unwrap();
    let spy_lines: Vec<VirtAddr> = (0..16).map(|i| spy_buf.offset(i * 4096)).collect();
    let spy = SpyProbeAgent::new(
        spy_pid,
        &EvictionSet::new(spy_lines),
        Thresholds::paper_defaults(),
        &ChannelParams::default(),
        cycles,
    );
    let trace = spy.trace();

    // Tenants alternate between genuine workload replays (vectoradd /
    // histogram traces) and bursty noise kernels, all homed on GPU0 so
    // every access lands in the contended L2.
    let mut agents: Vec<Box<dyn Agent>> = Vec::new();
    for t in 0..tenants {
        let pid = sys.create_process(GpuId::new(0));
        match t % 4 {
            0 => {
                let w = VectorAdd::new(256 + 32 * t);
                agents.push(Box::new(agent_for(&mut sys, pid, &w as &dyn Workload).unwrap()));
            }
            1 => {
                let w = Histogram::new(256 + 32 * t, 32);
                agents.push(Box::new(agent_for(&mut sys, pid, &w as &dyn Workload).unwrap()));
            }
            _ => {
                let buf = sys.malloc_on(pid, GpuId::new(0), 128 * 1024).unwrap();
                agents.push(Box::new(NoiseAgent::new(
                    pid,
                    buf,
                    1024,
                    128,
                    NoiseConfig {
                        burst_len: 48,
                        idle_between_bursts: 2_000 + 173 * t as u64,
                        seed: 11 + t as u64,
                    },
                )));
            }
        }
    }

    let start = Instant::now();
    let mut eng = Engine::with_scheduler(&mut sys, kind);
    eng.add_agent(Box::new(spy), 0);
    for (i, a) in agents.into_iter().enumerate() {
        eng.add_agent(a, 53 * i as u64);
    }
    let end_clock = eng.run(cycles).unwrap();
    drop(eng);
    let wall_secs = start.elapsed().as_secs_f64();

    let spy_samples = trace
        .samples()
        .iter()
        .map(|s| (s.at, s.misses, s.lines, s.mean_latency))
        .collect();
    RunOutcome {
        fingerprint: RunFingerprint {
            end_clock,
            totals: sys.stats().total(),
            spy_samples,
        },
        wall_secs,
    }
}

fn main() {
    let mut counts: Vec<usize> = Vec::new();
    let mut cycles: u64 = 3_000_000;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--cycles=") {
            cycles = v.parse().expect("--cycles=N");
        } else {
            counts.push(arg.parse().expect("tenant count"));
        }
    }
    if counts.is_empty() {
        counts = vec![8, 16, 24, 32];
    }

    report::header(
        "Extension — multi-tenant noise sweep (heap vs linear scheduler)",
        "8-32 tenants contending with a probing spy; interleavings asserted bit-identical",
    );

    let mut rows = Vec::new();
    for &n in &counts {
        let heap = run_once(n, cycles, SchedulerKind::Heap, 7_000 + n as u64);
        let linear = run_once(n, cycles, SchedulerKind::Linear, 7_000 + n as u64);
        assert_eq!(
            heap.fingerprint, linear.fingerprint,
            "heap and linear schedulers diverged at {n} tenants"
        );
        let accesses = heap.fingerprint.totals.issued_accesses;
        let heap_rate = accesses as f64 / heap.wall_secs / 1e6;
        let lin_rate = accesses as f64 / linear.wall_secs / 1e6;
        rows.push((
            format!("{n} tenants, {accesses} accesses"),
            format!("{heap_rate:.1} M/s"),
            format!("{lin_rate:.1} M/s"),
        ));
    }
    report::table3(
        ("configuration", "heap sched", "linear sched"),
        &rows
            .iter()
            .map(|(a, b, c)| (a.as_str(), b.as_str(), c.as_str()))
            .collect::<Vec<_>>(),
    );
    println!(
        "\nheap and linear interleavings are bit-identical (asserted above);\n\
         the heap's O(log n) pop/push replaces an O(n) scan per op, and the\n\
         zero-allocation op protocol keeps per-op cost flat as tenants grow."
    );
}
