//! Extension — **both covert channel families on one fabric-enabled
//! config**, head to head over multi-hop NVLink routes.
//!
//! The paper's central claim is that multi-GPU boxes leak over several
//! media with the same protocol on top. This sweep stages both media on
//! the *same* DGX-1 configuration — timed link fabric on
//! ([`FabricConfig::nvlink_v1`]), indirect peer routing allowed, full
//! timing noise — with the same seeded payload, and prints bandwidth
//! and bit error side by side, per decoder:
//!
//! - **Prime+Probe / L2** ([`L2SetMedium`]): trojan on GPU0, spy on
//!   GPU5 (different quads, no direct link — every probe crosses a
//!   2-hop route paying real per-link occupancy). Four aligned set
//!   pairs; the offline phase re-derives thresholds with the fabric
//!   enabled, so the shifted 2-hop clusters (hit ≈ 990+, miss ≈ 1450+
//!   plus link serialisation) are absorbed by calibration.
//! - **Link congestion** ([`LinkCongestionMedium`]): trojan on GPU1
//!   saturating its route to GPU5's memory, spy on GPU0 whose 0-1-5
//!   route shares link (1,5) — no shared cache set at all.
//!
//! Each family's trace is decoded by both the per-sample vote and the
//! matched filter (each with its medium's boundary policy) — the same
//! receive stack running on both media is precisely what the unified
//! pipeline buys.
//!
//! Determinism is asserted like the PR 3 link sweep: every family runs
//! on both the heap and the linear scheduler and must be bit-identical,
//! and the whole comparison re-runs through a parallel and a serial
//! [`TrialRunner`] fan-out, which must agree bit-for-bit.
//!
//! Gate (CI): both families decode the seeded payload at ≤ 5% BER with
//! their default (vote) decoder.
//!
//! Usage: `ext_two_hop_channel [--payload-bits=N] [--seed=S]`
//! (defaults: 256 bits, seed 2525; CI passes `--payload-bits=128`).

use gpubox_attacks::{
    redecode_traces, transmit_over, BoundaryPolicy, ChannelParams, L2SetMedium, LinkChannel,
    LinkCongestionMedium, Pipeline, TrialRunner,
};
use gpubox_bench::{report, AttackSetup};
use gpubox_sim::{
    FabricConfig, GpuId, MultiGpuSystem, SchedulerKind, SystemConfig, VirtAddr,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One channel family on the shared configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    L2PrimeProbe,
    LinkCongestion,
}

impl Family {
    fn label(self) -> &'static str {
        match self {
            Family::L2PrimeProbe => "L2 Prime+Probe (GPU0 -> GPU5, 2 hops)",
            Family::LinkCongestion => "link congestion (share link (1,5))",
        }
    }

    /// The boundary policy for this family's latency shape — matches
    /// the medium's `default_decoder` (pinned by the
    /// `media_defaults_match_their_distribution_shapes` unit test).
    fn boundary(self) -> BoundaryPolicy {
        match self {
            Family::L2PrimeProbe => BoundaryPolicy::TwoMeans,
            Family::LinkCongestion => BoundaryPolicy::Quantile,
        }
    }

    /// Channel parameters, shared by the transmission and the
    /// matched-filter re-decode (they must agree on slot timing).
    fn params(self) -> ChannelParams {
        match self {
            Family::L2PrimeProbe => ChannelParams::default(),
            Family::LinkCongestion => ChannelParams {
                spy_gap: 300,
                ..Default::default()
            },
        }
    }
}

/// Everything one family run observes, compared bit-for-bit across
/// schedulers and across serial/parallel fan-out.
#[derive(Debug, Clone, PartialEq)]
struct Outcome {
    vote_received: Vec<u8>,
    mf_received: Vec<u8>,
    vote_errors: usize,
    mf_errors: usize,
    listen_cycles: u64,
    duration_cycles: u64,
    bandwidth_bytes_per_sec: f64,
    /// Slot-latency percentiles (log2-bucket floors, cycles) — part of
    /// the bit-for-bit comparison like everything else the run observes.
    slot_latency_p50: u64,
    slot_latency_p95: u64,
    slot_latency_p99: u64,
}

/// The one shared system configuration both families run on.
fn shared_config(seed: u64) -> SystemConfig {
    let mut cfg = SystemConfig::dgx1()
        .with_seed(seed)
        .with_fabric(FabricConfig::nvlink_v1());
    cfg.allow_indirect_peer = true;
    cfg
}

fn seeded_payload(seed: u64, bits: usize) -> Vec<u8> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..bits).map(|_| (rng.gen::<u32>() & 1) as u8).collect()
}

/// Runs one family once under a forced scheduler: transmits with the
/// medium's default vote pipeline, then re-decodes the same traces with
/// the matched filter (transport-independent receive stack — no second
/// transmission needed).
fn run_family(family: Family, payload: &[u8], seed: u64, sched: SchedulerKind) -> Outcome {
    let params = family.params();
    let policy = family.boundary();
    let pipeline = Pipeline::vote(policy);
    let rep = match family {
        Family::L2PrimeProbe => {
            // Same shared_config as the link family — the one-config
            // invariant is structural, not copied.
            let mut setup =
                AttackSetup::prepare_between(shared_config(seed), GpuId::new(0), GpuId::new(5));
            let pairs = setup.aligned_pairs(4);
            let medium = L2SetMedium {
                trojan: setup.trojan,
                spy: setup.spy,
                pairs: &pairs,
                thresholds: setup.thresholds,
            };
            transmit_over(&mut setup.sys, &medium, payload, &params, &pipeline, sched)
                .expect("L2 transmission")
        }
        Family::LinkCongestion => {
            let mut sys = MultiGpuSystem::new(shared_config(seed));
            let home = GpuId::new(5);
            let page = sys.config().page_size;
            let trojan = sys.create_process(GpuId::new(1));
            let spy = sys.create_process(GpuId::new(0));
            sys.enable_peer_access(trojan, home).unwrap();
            sys.enable_peer_access(spy, home).unwrap();
            let tb = sys.malloc_on(trojan, home, 32 * page).unwrap();
            let sb = sys.malloc_on(spy, home, 2 * page).unwrap();
            let tl: Vec<VirtAddr> = (0..32).map(|i| tb.offset(i * page)).collect();
            let sl: Vec<VirtAddr> = (0..2).map(|i| sb.offset(i * page)).collect();
            let medium = LinkCongestionMedium {
                trojan,
                spy,
                channel: LinkChannel {
                    trojan_lines: &tl,
                    spy_lines: &sl,
                    trojan_streams: 4,
                },
            };
            transmit_over(&mut sys, &medium, payload, &params, &pipeline, sched)
                .expect("link transmission")
        }
    };

    // Matched-filter re-decode of the same per-lane traces (same
    // `params`, so slot timing always matches the transmission), on the
    // one shared receive path `transmit_over` itself decodes through.
    let (mf_received, _) =
        redecode_traces(&rep.traces, &params, &Pipeline::matched_filter(policy), payload.len());
    let mf_errors = mf_received.iter().zip(payload).filter(|(a, b)| a != b).count();
    Outcome {
        vote_received: rep.received,
        mf_received,
        vote_errors: rep.bit_errors,
        mf_errors,
        listen_cycles: rep.listen_cycles,
        duration_cycles: rep.duration_cycles,
        bandwidth_bytes_per_sec: rep.bandwidth_bytes_per_sec,
        slot_latency_p50: rep.slot_latency_p50,
        slot_latency_p95: rep.slot_latency_p95,
        slot_latency_p99: rep.slot_latency_p99,
    }
}

fn main() {
    let mut payload_bits = 256usize;
    let mut seed = 2525u64;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--payload-bits=") {
            payload_bits = v.parse().expect("--payload-bits=N");
        } else if let Some(v) = arg.strip_prefix("--seed=") {
            seed = v.parse().expect("--seed=S");
        }
    }
    let payload = seeded_payload(seed, payload_bits);

    report::header(
        "Extension — both channel families on one fabric-enabled DGX-1",
        "L2 Prime+Probe vs NVLink congestion: same config, same payload, decoders side by side",
    );

    let families = [Family::L2PrimeProbe, Family::LinkCongestion];

    // Every family on both schedulers: interleavings must be bit-identical.
    let mut outcomes = Vec::new();
    for f in families {
        let heap = run_family(f, &payload, seed, SchedulerKind::Heap);
        let linear = run_family(f, &payload, seed, SchedulerKind::Linear);
        assert_eq!(
            heap,
            linear,
            "heap and linear schedulers diverged for [{}]",
            f.label()
        );
        outcomes.push(heap);
    }

    // The whole comparison through parallel vs serial trial fan-out,
    // like the PR 3 link sweep.
    let fan = |r: TrialRunner| {
        r.run(families.len(), |t| {
            run_family(families[t.index], &payload, seed, SchedulerKind::Heap)
        })
    };
    let par = fan(TrialRunner::new(seed));
    let ser = fan(TrialRunner::serial(seed));
    assert_eq!(par, ser, "parallel fan-out must be bit-identical to serial");
    assert_eq!(par, outcomes, "fan-out must reproduce the sweep outcomes");

    // Acceptance gate: both families decode within 5% BER on their
    // default (vote) decoder, on the one shared config.
    for (f, o) in families.iter().zip(&outcomes) {
        let ber = o.vote_errors as f64 / payload.len() as f64;
        assert!(
            ber <= 0.05,
            "[{}] vote BER {ber} exceeds 5%",
            f.label()
        );
    }

    println!(
        "\n{:>38} | {:>14} | {:>14} | {:>14} | {:>20}",
        "family (one DGX-1, fabric on, noisy)",
        "bandwidth",
        "vote BER",
        "m.filter BER",
        "slot lat p50/p95/p99"
    );
    println!(
        "{}-+-{}-+-{}-+-{}-+-{}",
        "-".repeat(38),
        "-".repeat(14),
        "-".repeat(14),
        "-".repeat(14),
        "-".repeat(20)
    );
    for (f, o) in families.iter().zip(&outcomes) {
        println!(
            "{:>38} | {:>14} | {:>14} | {:>14} | {:>20}",
            f.label(),
            format!("{:.1} KB/s", o.bandwidth_bytes_per_sec / 1e3),
            format!(
                "{}/{} ({:.1}%)",
                o.vote_errors,
                payload.len(),
                100.0 * o.vote_errors as f64 / payload.len() as f64
            ),
            format!(
                "{}/{} ({:.1}%)",
                o.mf_errors,
                payload.len(),
                100.0 * o.mf_errors as f64 / payload.len() as f64
            ),
            format!(
                "{}/{}/{}",
                o.slot_latency_p50, o.slot_latency_p95, o.slot_latency_p99
            ),
        );
    }

    println!(
        "\nboth families ran on the identical fabric-enabled configuration\n\
         (timed per-link occupancy, indirect peer routing, full timing\n\
         noise) with the identical {payload_bits}-bit seeded payload; outcomes are\n\
         bit-identical across heap/linear schedulers and serial/parallel\n\
         fan-out (asserted above). The L2 channel stripes bits over four\n\
         aligned set pairs and wins on raw bandwidth; the congestion\n\
         channel needs no shared cache set at all — the fabric's link\n\
         occupancy alone carries it. One medium trait, one pipeline,\n\
         two physical media: the paper's point, reproduced end to end."
    );
}
