//! Extension — the channel over multi-hop NVLink routes.
//!
//! The DGX-1 runtime refuses peer access between GPUs without a direct
//! NVLink (paper Sec. III-A), but newer NVSwitch-era runtimes route
//! multi-hop. With `allow_indirect_peer`, the simulator forwards through
//! an intermediate GPU; the timing clusters shift up (hit ≈ 990, miss ≈
//! 1450 at 2 hops) yet stay separable, so the attack carries over — a
//! threat-model extension beyond the paper's testbed.

use gpubox_attacks::covert::bits_from_bytes;
use gpubox_attacks::{transmit, ChannelParams};
use gpubox_bench::{report, AttackSetup};
use gpubox_sim::{GpuId, SystemConfig};

fn main() {
    report::header(
        "Extension — covert channel over a 2-hop NVLink route (GPU0 <- GPU5)",
        "beyond the paper: indirect peer routing, as on NVSwitch systems",
    );
    let mut cfg = SystemConfig::dgx1().with_seed(2525);
    cfg.allow_indirect_peer = true;
    // GPU0 and GPU5 sit in different quads without a direct link: 2 hops.
    let mut setup = AttackSetup::prepare_between(cfg, GpuId::new(0), GpuId::new(5));
    println!(
        "\nderived thresholds on the 2-hop route: local miss >= {}, remote miss >= {}",
        setup.thresholds.local_miss, setup.thresholds.remote_miss
    );

    let pairs = setup.aligned_pairs(4);
    let message = b"two hops are enough";
    let rep = transmit(
        &mut setup.sys,
        setup.trojan,
        setup.spy,
        &pairs,
        &bits_from_bytes(message),
        &ChannelParams::default(),
        setup.thresholds,
    )
    .expect("transmission");
    println!(
        "\n2-hop transmission: {} bit errors / {} bits ({:.2}%), {:.1} KB/s",
        rep.bit_errors,
        rep.sent.len(),
        rep.error_rate * 100.0,
        rep.bandwidth_bytes_per_sec / 1e3
    );
    assert!(rep.error_rate < 0.05, "2-hop channel should still work");
    println!(
        "\nthe eviction-set machinery is hop-agnostic: only the timing\n\
         thresholds change, and the attacker re-derives those in the same\n\
         offline phase. Multi-hop fabrics widen the attack surface."
    );
}
