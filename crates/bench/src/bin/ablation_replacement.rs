//! Ablation — eviction-set discovery vs. cache replacement policy.
//!
//! The paper's Algorithm 1 relies on deterministic (LRU) eviction. This
//! ablation reruns conflict discovery under tree-PLRU and random
//! replacement and reports precision (fraction of reported conflicts that
//! truly share the target's set, checked against the simulator oracle).

use gpubox_attacks::{discover_conflicts, Locality, ScanConfig, Thresholds};
use gpubox_bench::report;
use gpubox_sim::{GpuId, MultiGpuSystem, ProcessCtx, ReplacementKind, SystemConfig, VirtAddr};

fn run_policy(kind: ReplacementKind) -> (usize, usize) {
    let cfg = SystemConfig::small_test()
        .with_seed(33)
        .with_replacement(kind);
    let mut sys = MultiGpuSystem::new(cfg);
    let pid = sys.create_process(GpuId::new(0));
    let thr = Thresholds::paper_defaults();
    let mut found_total = 0usize;
    let mut correct = 0usize;
    let buf = sys
        .malloc_on(pid, GpuId::new(0), 96 * 4096)
        .expect("buffer");
    for target_page in 0..4u64 {
        let target = buf.offset(target_page * 4096);
        let candidates: Vec<VirtAddr> = (0..96u64)
            .filter(|&p| p != target_page)
            .map(|p| buf.offset(p * 4096))
            .collect();
        let (_, tset) = sys.oracle_set_of(pid, target).expect("oracle");
        let found = {
            let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
            discover_conflicts(
                &mut ctx,
                target,
                &candidates,
                &thr,
                Locality::Local,
                &ScanConfig::default(),
            )
            .expect("scan")
        };
        for va in &found {
            found_total += 1;
            if sys.oracle_set_of(pid, *va).expect("oracle").1 == tset {
                correct += 1;
            }
        }
    }
    (found_total, correct)
}

fn main() {
    report::header(
        "Ablation — Algorithm 1 vs. replacement policy",
        "Sec. III-B relies on deterministic LRU eviction",
    );
    let mut rows = Vec::new();
    for (name, kind) in [
        ("LRU", ReplacementKind::Lru),
        ("tree-PLRU", ReplacementKind::TreePlru),
        ("random", ReplacementKind::Random),
    ] {
        let (found, correct) = run_policy(kind);
        let precision = if found == 0 {
            0.0
        } else {
            correct as f64 / found as f64
        };
        rows.push((
            name.to_string(),
            found,
            format!("{:.1}%", precision * 100.0),
        ));
    }
    report::table3(("policy", "conflicts reported", "precision"), &rows);
    println!(
        "\ninterpretation: LRU gives near-perfect discovery; randomized\n\
         replacement destroys the deterministic eviction signal Algorithm 1\n\
         depends on — a randomizing cache is a plausible defence."
    );
}
