//! Extension — **anatomy of one hardened transmission**, rendered from
//! the cycle-accurate event trace ([`gpubox_sim::telemetry`]).
//!
//! Re-runs the headline `ext_fault_resilience` scenario — the resilient
//! transport ([`gpubox_attacks::transmit_resilient`]) pushing a payload
//! through a **scheduled mid-transmission link outage** on the one-link
//! NVLink fabric — with full tracing enabled, then renders what the box
//! actually did as overlapping spans:
//!
//! - track 0: the **installed fault window** (from the `FaultPlan`,
//!   recorded at `set_fault_plan` time);
//! - track 1: the window of fault responses the fabric **observed**
//!   (down-link stall waits, reroutes, PCIe fallbacks);
//! - track 2: every engine **round** of the transport — round 0
//!   colliding with the outage, the backed-off retries clearing it —
//!   with the frame seal/open, resync and boundary-recalibration
//!   events in between.
//!
//! Artefacts: `results/trace_anatomy.json` (Chrome `trace_event`
//! format — load it at <https://ui.perfetto.dev>) plus a compact human
//! timeline on stdout.
//!
//! CI gates:
//! - the exported trace is **valid JSON** (checked with the
//!   dependency-free validator);
//! - the trace's fault-window span **matches the installed
//!   `FaultPlan` epoch exactly**, and the observed down-waits fall
//!   inside it;
//! - the traced run decodes bit-error-free through the outage with at
//!   least one retry round (same behaviour as the untraced
//!   `ext_fault_resilience` gate — tracing must not change outcomes);
//! - the ring dropped no records (the anatomy is complete).
//!
//! Usage: `ext_trace_anatomy`

use gpubox_attacks::covert::bits_from_bytes;
use gpubox_attacks::{
    extract_anatomy, transmit_resilient, BoundaryPolicy, ChannelParams, LinkChannel,
    LinkCongestionMedium, Pipeline, RetryConfig,
};
use gpubox_bench::report;
use gpubox_sim::telemetry::{chrome_trace_json, human_timeline, validate_json, TraceKind};
use gpubox_sim::{
    FabricConfig, FaultPlan, GpuId, MultiGpuSystem, SchedulerKind, SystemConfig, VirtAddr,
};

fn main() {
    report::header(
        "EXT: trace anatomy — one hardened transmission through a link outage",
        "extension beyond the paper (observability; scenario of ISSUE 6's fault gate)",
    );

    let params = ChannelParams {
        spy_gap: 600,
        ..Default::default()
    };
    let cfg = SystemConfig::small_test()
        .noiseless()
        .with_fabric(FabricConfig::nvlink_v1());
    let mut sys = MultiGpuSystem::new(cfg);
    let trojan = sys.create_process(GpuId::new(1));
    let spy = sys.create_process(GpuId::new(1));
    sys.enable_peer_access(trojan, GpuId::new(0)).unwrap();
    sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
    let tb = sys.malloc_on(trojan, GpuId::new(0), 32 * 4096).unwrap();
    let sb = sys.malloc_on(spy, GpuId::new(0), 8 * 4096).unwrap();
    let trojan_lines: Vec<VirtAddr> = (0..32).map(|i| tb.offset(i * 4096)).collect();
    let spy_lines: Vec<VirtAddr> = (0..8).map(|i| sb.offset(i * 4096)).collect();

    // Tracing on BEFORE the fault plan is installed, so the plan's
    // epoch records land in the ring next to the stalls observed later.
    sys.enable_tracing(1 << 19);

    // The outage window of `ext_fault_resilience`'s headline case: the
    // only NVLink link down over the last quarter of round 0. Agent
    // clocks restart at zero every round, so the window recurs each
    // round; the growing backoff shifts the shorter retry streams off
    // it.
    let outage_from = 150 * params.slot_cycles;
    let outage_until = 176 * params.slot_cycles;
    sys.set_fault_plan(FaultPlan::none().with_link_down(0, outage_from, outage_until))
        .unwrap();

    let medium = LinkCongestionMedium {
        trojan,
        spy,
        channel: LinkChannel {
            trojan_lines: &trojan_lines,
            spy_lines: &spy_lines,
            trojan_streams: 2,
        },
    };
    let payload = bits_from_bytes(b"survive it");
    let rep = transmit_resilient(
        &mut sys,
        &medium,
        &payload,
        &params,
        &Pipeline::vote(BoundaryPolicy::Quantile),
        &RetryConfig {
            max_retries: 4,
            ..Default::default()
        },
        SchedulerKind::Auto,
    )
    .unwrap();

    let dropped = sys.trace().dropped();
    let recorded = sys.trace().recorded();
    let records = sys.trace().records();
    let anatomy = extract_anatomy(&records);
    let spans = anatomy.spans();

    println!(
        "\ntransmission: {} bits, {} frames, {} rounds, {} retransmissions, {} bit errors",
        rep.sent.len(),
        rep.frames_total,
        rep.rounds,
        rep.retransmissions,
        rep.bit_errors
    );
    println!(
        "trace: {recorded} records ({dropped} dropped), {} fault epochs, {} seals, {}+{} opens (ok+failed), {} resyncs, {} boundaries recalibrated",
        anatomy.fault_epochs.len(),
        anatomy.frame_seals,
        anatomy.frame_opens_ok,
        anatomy.frame_opens_failed,
        anatomy.resyncs,
        anatomy.boundaries_chosen
    );
    println!(
        "fault response: {} PCIe fallbacks, {} reroutes (the one-link fabric can only fall back)",
        anatomy.pcie_fallbacks, anatomy.reroutes
    );

    println!("\n-- timeline (spans + key events) --");
    let key_events: Vec<_> = records
        .iter()
        .filter(|r| {
            matches!(
                r.kind,
                TraceKind::FaultEpoch
                    | TraceKind::FrameSeal
                    | TraceKind::FrameOpen
                    | TraceKind::RetryRound
                    | TraceKind::Resync
                    | TraceKind::BoundaryChosen
                    | TraceKind::PcieFallback
                    | TraceKind::FaultReroute
            )
        })
        .copied()
        .collect();
    print!("{}", human_timeline(&key_events, &spans, 60));

    let json = chrome_trace_json(&records, &spans);
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join("trace_anatomy.json");
        match std::fs::write(&path, &json) {
            Ok(()) => println!(
                "\n[artefact] {} ({} bytes — load at https://ui.perfetto.dev)",
                path.display(),
                json.len()
            ),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }

    // A saturated ring means every span/count above under-reports the
    // run — surface that in RESULTS.json before the hard gate fires.
    if dropped > 0 {
        report::warn(
            "ext_trace_anatomy",
            &format!("TraceSink dropped {dropped} records — trace spans under-report the run"),
        );
    }

    // Gates.
    assert_eq!(dropped, 0, "ring must hold the whole run (raise capacity)");
    validate_json(&json).expect("exported trace must be valid Chrome trace_event JSON");
    assert_eq!(rep.bit_errors, 0, "tracing must not change outcomes");
    assert!(rep.rounds > 1, "the outage must cost at least one retry");
    assert_eq!(
        anatomy.fault_epochs.len(),
        1,
        "one installed outage, one epoch span"
    );
    let epoch = &anatomy.fault_epochs[0];
    assert_eq!(
        (epoch.start, epoch.end),
        (outage_from, outage_until),
        "fault-window span must match the installed FaultPlan epoch"
    );
    let observed = anatomy
        .observed_fault
        .as_ref()
        .expect("the outage must actually divert or stall lines");
    assert!(
        observed.start >= epoch.start && observed.end <= epoch.end,
        "observed fault responses ({}..{}) must fall inside the installed window ({}..{})",
        observed.start,
        observed.end,
        epoch.start,
        epoch.end
    );
    assert_eq!(
        anatomy.rounds.len(),
        rep.rounds,
        "one round span per engine round"
    );
    assert!(
        anatomy.frame_opens_ok >= rep.frames_total as u64,
        "every frame eventually delivered must have an open record"
    );

    println!("\nall trace-anatomy gates passed");
}
