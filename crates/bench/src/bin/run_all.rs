//! Runs every experiment binary in paper order — the one-shot full
//! reproduction. Skips the slow fingerprinting run unless `--full`.
//!
//! Usage: `cargo run --release -p gpubox-bench --bin run_all [--full]`

use std::process::Command;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let mut bins = vec![
        "fig04_timing_histogram",
        "table1_cache_re",
        "fig05_eviction_validation",
        "fig09_bandwidth_error",
        "fig10_message_trace",
        "fig11_memorygrams",
        "fig13_table2_mlp_misses",
        "fig14_mlp_memorygram",
        "fig15_epochs",
        "ablation_replacement",
        "ablation_alignment",
        "ablation_noise_mitigation",
        "ablation_slot_cycles",
        "ext_partition_defense",
        "ext_multi_gpu_bandwidth",
        "ext_ecc_channel",
        "ext_two_hop_channel",
        "ext_link_congestion_channel",
        "ext_fabric_defense",
        "ext_fault_resilience",
    ];
    if full {
        bins.insert(6, "fig12_confusion_matrix");
    } else {
        eprintln!("(skipping fig12_confusion_matrix — pass --full to include it)");
    }
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failed = Vec::new();
    for bin in &bins {
        println!("\n################ {bin} ################");
        // A binary that cannot even launch (missing, not built) is a
        // failure of that experiment, not of the whole suite: record it
        // and keep going so the final report still covers the rest.
        match Command::new(dir.join(bin)).status() {
            Ok(status) if status.success() => {}
            Ok(status) => {
                eprintln!("{bin} exited with {status}");
                failed.push(*bin);
            }
            Err(e) => {
                eprintln!("could not launch {bin}: {e}");
                failed.push(*bin);
            }
        }
    }
    println!("\n================================================================");
    if failed.is_empty() {
        println!("all {} experiments completed successfully", bins.len());
    } else {
        println!("FAILED: {failed:?}");
        std::process::exit(1);
    }
}
