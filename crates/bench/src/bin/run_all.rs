//! Runs every experiment binary in paper order — the one-shot full
//! reproduction. Skips the slow fingerprinting run unless `--full`.
//!
//! Besides the per-bin stdout, emits one machine-readable
//! `results/RESULTS.json` artefact: per-bin status (`pass` / `fail` /
//! `unlaunchable`), exit code, wall-clock duration, peak OS thread
//! count (sampled from `/proc/<pid>/status` while the bin runs) and
//! any warnings the bin recorded via [`gpubox_bench::report::warn`]
//! (e.g. a saturated `TraceSink` under-reporting trace spans), plus
//! the suite totals — the unified report CI uploads. The same totals
//! are exported as `results/metrics.prom` in Prometheus exposition
//! format through [`MetricSet::to_prometheus_text`].
//!
//! Usage: `cargo run --release -p gpubox-bench --bin run_all [--full]`

use gpubox_bench::report::write_json;
use gpubox_sim::telemetry::MetricSet;
use serde::Serialize;
use std::process::Command;
use std::time::{Duration, Instant};

/// Current OS thread count of `pid` from `/proc/<pid>/status`
/// (`Threads:` line). Linux only; `None` elsewhere or on any read
/// failure (e.g. the process already exited).
fn thread_count(pid: u32) -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string(format!("/proc/{pid}/status")).ok()?;
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = pid;
        None
    }
}

#[derive(Debug, Serialize)]
struct BinResult {
    bin: String,
    /// `pass`, `fail` (ran, nonzero exit — a gate tripped) or
    /// `unlaunchable` (missing / not built).
    status: String,
    /// Exit code when the process ran and reported one.
    exit_code: Option<i32>,
    duration_ms: u64,
    /// Peak OS thread count observed while the bin ran (Linux only;
    /// `None` when the probe is unavailable or the bin never launched).
    peak_threads: Option<u64>,
    /// Warnings the bin recorded via `report::warn` — non-fatal
    /// conditions (e.g. dropped trace records) that would otherwise
    /// only exist in the scrollback.
    warnings: Vec<String>,
}

/// Reads and clears the warning file a bin may have written through
/// `report::warn`. Cleared *before* each launch so stale warnings from
/// a previous suite run are never attributed to this one.
fn warning_path(bin: &str) -> std::path::PathBuf {
    std::path::Path::new("results")
        .join("warnings")
        .join(format!("{bin}.txt"))
}

fn collect_warnings(bin: &str) -> Vec<String> {
    std::fs::read_to_string(warning_path(bin))
        .map(|s| s.lines().map(str::to_string).collect())
        .unwrap_or_default()
}

#[derive(Debug, Serialize)]
struct SuiteResults {
    total: usize,
    passed: usize,
    failed: Vec<String>,
    duration_ms: u64,
    bins: Vec<BinResult>,
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let mut bins = vec![
        "fig04_timing_histogram",
        "table1_cache_re",
        "fig05_eviction_validation",
        "fig09_bandwidth_error",
        "fig10_message_trace",
        "fig11_memorygrams",
        "fig13_table2_mlp_misses",
        "fig14_mlp_memorygram",
        "fig15_epochs",
        "ablation_replacement",
        "ablation_alignment",
        "ablation_noise_mitigation",
        "ablation_slot_cycles",
        "ext_partition_defense",
        "ext_multi_gpu_bandwidth",
        "ext_ecc_channel",
        "ext_two_hop_channel",
        "ext_link_congestion_channel",
        "ext_fabric_defense",
        "ext_fault_resilience",
        "ext_trace_anatomy",
        "ext_fleet_placement",
        "ext_detection",
    ];
    if full {
        bins.insert(6, "fig12_confusion_matrix");
    } else {
        eprintln!("(skipping fig12_confusion_matrix — pass --full to include it)");
    }
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let suite_started = Instant::now();
    let mut results: Vec<BinResult> = Vec::with_capacity(bins.len());
    for bin in &bins {
        println!("\n################ {bin} ################");
        // A binary that cannot even launch (missing, not built) is a
        // failure of that experiment, not of the whole suite: record it
        // and keep going so the final report still covers the rest.
        let started = Instant::now();
        let _ = std::fs::remove_file(warning_path(bin));
        let (status, exit_code, peak_threads) = match Command::new(dir.join(bin)).spawn() {
            Ok(mut child) => {
                // Sample the child's OS thread count until it exits so
                // the report records how parallel each bin actually ran.
                let mut peak: Option<u64> = None;
                let outcome = loop {
                    if let Some(t) = thread_count(child.id()) {
                        peak = Some(peak.map_or(t, |p| p.max(t)));
                    }
                    match child.try_wait() {
                        Ok(Some(s)) => break Ok(s),
                        Ok(None) => std::thread::sleep(Duration::from_millis(5)),
                        Err(e) => break Err(e),
                    }
                };
                match outcome {
                    Ok(s) if s.success() => ("pass", s.code(), peak),
                    Ok(s) => {
                        eprintln!("{bin} exited with {s}");
                        ("fail", s.code(), peak)
                    }
                    Err(e) => {
                        eprintln!("could not wait on {bin}: {e}");
                        ("fail", None, peak)
                    }
                }
            }
            Err(e) => {
                eprintln!("could not launch {bin}: {e}");
                ("unlaunchable", None, None)
            }
        };
        results.push(BinResult {
            bin: (*bin).to_string(),
            status: status.to_string(),
            exit_code,
            duration_ms: started.elapsed().as_millis() as u64,
            peak_threads,
            warnings: collect_warnings(bin),
        });
    }
    let failed: Vec<String> = results
        .iter()
        .filter(|r| r.status != "pass")
        .map(|r| r.bin.clone())
        .collect();
    let suite = SuiteResults {
        total: results.len(),
        passed: results.len() - failed.len(),
        failed: failed.clone(),
        duration_ms: suite_started.elapsed().as_millis() as u64,
        bins: results,
    };
    write_json("RESULTS", &suite);
    // The same totals as a Prometheus scrape surface: pass/fail/warning
    // counters and the per-bin wall-clock distribution.
    let mut metrics = MetricSet::new();
    for r in &suite.bins {
        metrics.add(
            match r.status.as_str() {
                "pass" => "suite.bins_passed",
                _ => "suite.bins_failed",
            },
            1,
        );
        metrics.add("suite.warnings", r.warnings.len() as u64);
        metrics.observe("suite.bin_duration_ms", r.duration_ms);
    }
    if std::fs::create_dir_all("results").is_ok() {
        let path = "results/metrics.prom";
        match std::fs::write(path, metrics.to_prometheus_text()) {
            Ok(()) => println!("\n[artefact] {path}"),
            Err(e) => eprintln!("warning: could not write {path}: {e}"),
        }
    }
    println!("\n================================================================");
    if failed.is_empty() {
        println!("all {} experiments completed successfully", suite.total);
    } else {
        println!("FAILED: {failed:?}");
        std::process::exit(1);
    }
}
