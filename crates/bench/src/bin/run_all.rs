//! Runs every experiment binary in paper order — the one-shot full
//! reproduction. Skips the slow fingerprinting run unless `--full`.
//!
//! Besides the per-bin stdout, emits one machine-readable
//! `results/RESULTS.json` artefact: per-bin status (`pass` / `fail` /
//! `unlaunchable`), exit code and wall-clock duration, plus the suite
//! totals — the unified report CI uploads.
//!
//! Usage: `cargo run --release -p gpubox-bench --bin run_all [--full]`

use gpubox_bench::report::write_json;
use serde::Serialize;
use std::process::Command;
use std::time::Instant;

#[derive(Debug, Serialize)]
struct BinResult {
    bin: String,
    /// `pass`, `fail` (ran, nonzero exit — a gate tripped) or
    /// `unlaunchable` (missing / not built).
    status: String,
    /// Exit code when the process ran and reported one.
    exit_code: Option<i32>,
    duration_ms: u64,
}

#[derive(Debug, Serialize)]
struct SuiteResults {
    total: usize,
    passed: usize,
    failed: Vec<String>,
    duration_ms: u64,
    bins: Vec<BinResult>,
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let mut bins = vec![
        "fig04_timing_histogram",
        "table1_cache_re",
        "fig05_eviction_validation",
        "fig09_bandwidth_error",
        "fig10_message_trace",
        "fig11_memorygrams",
        "fig13_table2_mlp_misses",
        "fig14_mlp_memorygram",
        "fig15_epochs",
        "ablation_replacement",
        "ablation_alignment",
        "ablation_noise_mitigation",
        "ablation_slot_cycles",
        "ext_partition_defense",
        "ext_multi_gpu_bandwidth",
        "ext_ecc_channel",
        "ext_two_hop_channel",
        "ext_link_congestion_channel",
        "ext_fabric_defense",
        "ext_fault_resilience",
        "ext_trace_anatomy",
    ];
    if full {
        bins.insert(6, "fig12_confusion_matrix");
    } else {
        eprintln!("(skipping fig12_confusion_matrix — pass --full to include it)");
    }
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let suite_started = Instant::now();
    let mut results: Vec<BinResult> = Vec::with_capacity(bins.len());
    for bin in &bins {
        println!("\n################ {bin} ################");
        // A binary that cannot even launch (missing, not built) is a
        // failure of that experiment, not of the whole suite: record it
        // and keep going so the final report still covers the rest.
        let started = Instant::now();
        let (status, exit_code) = match Command::new(dir.join(bin)).status() {
            Ok(status) if status.success() => ("pass", status.code()),
            Ok(status) => {
                eprintln!("{bin} exited with {status}");
                ("fail", status.code())
            }
            Err(e) => {
                eprintln!("could not launch {bin}: {e}");
                ("unlaunchable", None)
            }
        };
        results.push(BinResult {
            bin: (*bin).to_string(),
            status: status.to_string(),
            exit_code,
            duration_ms: started.elapsed().as_millis() as u64,
        });
    }
    let failed: Vec<String> = results
        .iter()
        .filter(|r| r.status != "pass")
        .map(|r| r.bin.clone())
        .collect();
    let suite = SuiteResults {
        total: results.len(),
        passed: results.len() - failed.len(),
        failed: failed.clone(),
        duration_ms: suite_started.elapsed().as_millis() as u64,
        bins: results,
    };
    write_json("RESULTS", &suite);
    println!("\n================================================================");
    if failed.is_empty() {
        println!("all {} experiments completed successfully", suite.total);
    } else {
        println!("FAILED: {failed:?}");
        std::process::exit(1);
    }
}
