//! Fig. 10 — the covert message as the spy's probe-latency trace.
//!
//! Sends the paper's message ("Hello! How are you? ...") over one cache
//! set and prints the received text plus the probe-latency levels: ~630
//! cycles while a 0 is sent (remote hit), ~950 while a 1 is sent (remote
//! miss).

use gpubox_attacks::covert::{bits_from_bytes, bytes_from_bits};
use gpubox_attacks::{transmit, ChannelParams};
use gpubox_bench::{report, AttackSetup};

/// Golden `(bit_errors, fnv1a(received), duration_cycles)`. The decoded
/// bits (and their PR 3 fingerprint, commit af72b35) survived the move
/// to group-testing discovery; only the end clock shifted when the
/// offline phase started ending at a canonical boundary
/// ([`gpubox_sim::MultiGpuSystem::canonicalize_phase`] reseeds the
/// jitter RNG). Any *further* drift is a regression.
const GOLDEN: (usize, u64, u64) = (0, 0x6efe_f0d3_d812_3d07, 3_336_535);

fn main() {
    report::header(
        "Fig. 10 — cross-GPU covert message received by the spy",
        "Sec. IV-C: '0' ~630 cycles, '1' ~950 cycles",
    );
    let message = b"Hello! How are you? This message crossed two GPUs via the L2 cache.";
    let mut setup = AttackSetup::prepare(1010);
    let pairs = setup.aligned_pairs(1);
    let rep = transmit(
        &mut setup.sys,
        setup.trojan,
        setup.spy,
        &pairs,
        &bits_from_bytes(message),
        &ChannelParams::default(),
        setup.thresholds,
    )
    .expect("transmission");

    assert_eq!(
        (rep.bit_errors, report::fnv1a_bits(&rep.received), rep.duration_cycles),
        GOLDEN,
        "decoded stream diverged from the PR 3 golden"
    );

    let received = bytes_from_bits(&rep.received);
    println!("\nsent:     {:?}", String::from_utf8_lossy(message));
    println!("received: {:?}", String::from_utf8_lossy(&received));
    println!(
        "bit errors: {} / {} ({:.2}%)",
        rep.bit_errors,
        rep.sent.len(),
        rep.error_rate * 100.0
    );

    // The trace levels, exactly what Fig. 10's y-axis shows.
    let trace = &rep.traces[0];
    let ones: Vec<f64> = trace
        .iter()
        .filter(|s| s.misses > 8)
        .map(|s| f64::from(s.mean_latency))
        .collect();
    let zeros: Vec<f64> = trace
        .iter()
        .filter(|s| s.misses <= 8)
        .map(|s| f64::from(s.mean_latency))
        .collect();
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nprobe level while sending '1': {:.0} cycles (paper: ~950)",
        avg(&ones)
    );
    println!(
        "probe level while sending '0': {:.0} cycles (paper: ~630)",
        avg(&zeros)
    );

    // A segment of the raw trace, downsampled, as an ASCII strip chart.
    println!("\nfirst 160 probes (.=hit level, #=miss level):");
    let strip: String = trace
        .iter()
        .take(160)
        .map(|s| if s.misses > 8 { '#' } else { '.' })
        .collect();
    for chunk in strip.as_bytes().chunks(80) {
        println!("{}", String::from_utf8_lossy(chunk));
    }
    report::write_json(
        "fig10_trace",
        &trace
            .iter()
            .take(500)
            .map(|s| (s.at, s.mean_latency))
            .collect::<Vec<_>>(),
    );
}
