//! Fig. 15 — inferring the number of training epochs.
//!
//! A two-epoch MLP run shows two activity bands in the memorygram's
//! temporal profile; the epoch detector counts them.

use gpubox_attacks::side::{detect_epochs, record_memorygram, RecorderConfig};
use gpubox_bench::{report, setup::victim_with_duration, SideChannelSetup};
use gpubox_sim::GpuId;
use gpubox_workloads::MlpTraining;

fn main() {
    report::header(
        "Fig. 15 — memorygram of a two-epoch training run",
        "Sec. V-B: the number of epochs is visible as activity bands",
    );
    let mut setup = SideChannelSetup::prepare(1515, 256);
    for epochs in [1usize, 2, 3] {
        let victim = setup.sys.create_process(GpuId::new(0));
        let w = MlpTraining::with_hidden_epochs(128, epochs);
        let (agent, duration) = victim_with_duration(&mut setup.sys, victim, &w);
        setup.sys.flush_l2(GpuId::new(0));
        let gram = record_memorygram(
            &mut setup.sys,
            setup.spy,
            &setup.monitored,
            setup.thresholds,
            &RecorderConfig {
                duration,
                sweep_gap: 0,
            },
            vec![Box::new(agent)],
        )
        .expect("memorygram");
        let detected = detect_epochs(&gram, 9);
        println!("\n--- trained for {epochs} epoch(s): detector says {detected} ---");
        // Temporal profile strip (the Fig. 15 x-axis).
        let profile = gram.misses_per_sweep();
        let max = profile.iter().copied().max().unwrap_or(1) as f64;
        let strip: String = profile
            .iter()
            .map(|&v| {
                let lvl = (v as f64 / max * 4.0).round() as usize;
                [' ', '.', ':', '#', '@'][lvl.min(4)]
            })
            .collect();
        // Downsample to 72 cols.
        let cols = 72usize.min(strip.len().max(1));
        let step = strip.len().max(1) as f64 / cols as f64;
        let down: String = (0..cols)
            .map(|i| strip.as_bytes()[(i as f64 * step) as usize] as char)
            .collect();
        println!("activity: |{down}|");
        assert_eq!(detected, epochs, "epoch detector must match ground truth");
    }
    println!("\nepoch counts recovered correctly for 1, 2 and 3 epochs.");
}
