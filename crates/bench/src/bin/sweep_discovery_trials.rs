//! Multi-trial eviction-set discovery sweep (Alg. 1) with parallel
//! fan-out.
//!
//! Runs the pointer-chase discovery pipeline over many independent
//! machines (fresh frame placement per trial), both serially and in
//! parallel through [`TrialRunner`], verifies the two runs are
//! **bit-identical**, and reports per-trial discovery statistics plus the
//! wall-clock speedup. On a multi-core machine the parallel run scales
//! near-linearly; on one core the point of the binary is the determinism
//! check.
//!
//! Usage: `sweep_discovery_trials [trials] [pages]`

use gpubox_attacks::{discover_conflicts, Locality, ScanConfig, Thresholds, TrialRunner};
use gpubox_bench::report;
use gpubox_sim::{GpuId, MultiGpuSystem, ProcessCtx, SystemConfig, VirtAddr};
use std::time::Instant;

/// Result of one discovery trial: how many conflicts each of the first
/// four targets found, plus a checksum over the discovered addresses.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
struct TrialResult {
    seed: u64,
    conflicts_found: Vec<usize>,
    checksum: u64,
    accesses: u64,
}

fn one_trial(seed: u64, pages: u64) -> TrialResult {
    let mut sys = MultiGpuSystem::new(SystemConfig::small_test().with_seed(seed));
    let pid = sys.create_process(GpuId::new(0));
    let mut ctx = ProcessCtx::new(&mut sys, pid, 0);
    let page = 4096u64;
    let buf = ctx.malloc_on(GpuId::new(0), pages * page).unwrap();
    let thr = Thresholds::paper_defaults();

    let mut conflicts_found = Vec::new();
    let mut checksum = 0u64;
    for target_page in 0..4u64 {
        let target = buf.offset(target_page * page);
        let candidates: Vec<VirtAddr> = (0..pages)
            .filter(|&p| p != target_page)
            .map(|p| buf.offset(p * page))
            .collect();
        let found = discover_conflicts(
            &mut ctx,
            target,
            &candidates,
            &thr,
            Locality::Local,
            &ScanConfig::default(),
        )
        .unwrap();
        conflicts_found.push(found.len());
        for va in found {
            checksum = checksum.rotate_left(7) ^ va.raw();
        }
    }
    let accesses = ctx
        .system()
        .stats()
        .gpu(GpuId::new(0))
        .issued_accesses;
    TrialResult {
        seed,
        conflicts_found,
        checksum,
        accesses,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trials: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(8);
    let pages: u64 = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(96);
    report::header(
        "Eviction-set discovery — parallel trial sweep",
        "Alg. 1 across independent machines; parallel fan-out, deterministic seeds",
    );
    println!("{trials} trials x {pages} pages, discovery on 4 targets each\n");

    let t0 = Instant::now();
    let serial = TrialRunner::serial(0xD15C).run(trials, |t| one_trial(t.seed, pages));
    let serial_time = t0.elapsed();

    let t0 = Instant::now();
    let parallel = TrialRunner::new(0xD15C).run(trials, |t| one_trial(t.seed, pages));
    let parallel_time = t0.elapsed();

    assert_eq!(
        serial, parallel,
        "parallel fan-out must be bit-identical to the serial sweep"
    );

    println!(
        "{:>6} | {:>18} | {:>16} | {:>10}",
        "trial", "conflicts (4 tgts)", "checksum", "accesses"
    );
    println!("-------+--------------------+------------------+-----------");
    for (i, r) in parallel.iter().enumerate() {
        println!(
            "{:>6} | {:>18} | {:>16x} | {:>10}",
            i,
            format!("{:?}", r.conflicts_found),
            r.checksum,
            r.accesses
        );
    }

    let threads = rayon::current_num_threads();
    println!(
        "\nserial: {serial_time:.2?}   parallel ({threads} threads): {parallel_time:.2?}   \
         speedup: {:.2}x",
        serial_time.as_secs_f64() / parallel_time.as_secs_f64().max(1e-9)
    );
    println!("bit-identical: yes (asserted)");
    report::write_json("sweep_discovery_trials", &parallel);
}
