//! Extension — forward error correction over the covert channel.
//!
//! The paper reports raw error rates (1.3% at 4 sets, growing with more
//! sets). Layering Hamming(7,4) over the channel trades 4/7 of the rate
//! for single-error correction per codeword — pushing residual errors
//! down even at aggressive set counts.

use gpubox_attacks::covert::bits_from_bytes;
use gpubox_attacks::covert::ecc::{deinterleave, ecc_decode, ecc_encode, interleave, ECC_RATE};
use gpubox_attacks::{transmit, ChannelParams};
use gpubox_bench::{report, AttackSetup};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    report::header(
        "Extension — Hamming(7,4) coding over the covert channel",
        "raw vs. coded residual error at 4 / 8 / 16 parallel sets",
    );
    let mut setup = AttackSetup::prepare(4711);
    let pairs = setup.aligned_pairs(16);
    let params = ChannelParams::default();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let data_bytes: Vec<u8> = (0..400).map(|_| rng.gen()).collect();
    let data_bits = bits_from_bytes(&data_bytes);

    let mut rows = Vec::new();
    for &k in &[4usize, 8, 16] {
        // Raw transmission.
        let raw = transmit(
            &mut setup.sys,
            setup.trojan,
            setup.spy,
            &pairs[..k],
            &data_bits,
            &params,
            setup.thresholds,
        )
        .expect("raw transmission");

        // Coded + interleaved transmission: spread congestion bursts over
        // many codewords, then correct.
        let coded = ecc_encode(&data_bits);
        let depth = 64;
        let sent = interleave(&coded, depth);
        let coded_rep = transmit(
            &mut setup.sys,
            setup.trojan,
            setup.spy,
            &pairs[..k],
            &sent,
            &params,
            setup.thresholds,
        )
        .expect("coded transmission");
        let received = deinterleave(&coded_rep.received, depth, coded.len());
        let (decoded, corrections) = ecc_decode(&received, data_bits.len());
        let residual = decoded
            .iter()
            .zip(&data_bits)
            .filter(|(a, b)| a != b)
            .count() as f64
            / data_bits.len() as f64;

        rows.push((
            k,
            format!("{:.2}%", raw.error_rate * 100.0),
            format!("{:.3}% ({corrections} fixed)", residual * 100.0),
        ));
        let _ = ECC_RATE;
    }
    report::table3(("sets", "raw error", "coded+interleaved residual"), &rows);
    println!(
        "\ncoding costs {:.0}% of the goodput; interleaving (depth 64) spreads\n\
         congestion bursts across codewords so single-error correction can\n\
         repair them.",
        (1.0 - ECC_RATE) * 100.0
    );
}
