//! Extension — forward error correction over the covert channel.
//!
//! The paper reports raw error rates (1.3% at 4 sets, growing with more
//! sets). Layering Hamming(7,4) over the channel trades 4/7 of the rate
//! for single-error correction per codeword — pushing residual errors
//! down even at aggressive set counts.
//!
//! Since PR 4 the coding layer is a first-class [`Coding`] stage of the
//! channel [`Pipeline`]: the same `transmit_over` call runs raw or coded
//! on any medium, and the report's `ecc_corrections` counts the repairs.
//!
//! PR 5 adds the **soft-decision** stage: [`Coding::Hamming74Soft`]
//! feeds the matched filter's per-slot confidences (margins the hard
//! threshold throws away) into Chase-style least-confidence correction.
//! Each sweep point re-decodes the *same* soft transmission traces with
//! plain hard-decision Hamming and asserts soft never does worse —
//! the CI-backed "never worse than hard" guarantee.

use gpubox_attacks::covert::bits_from_bytes;
use gpubox_attacks::covert::ecc::ECC_RATE;
use gpubox_attacks::{
    redecode_traces, transmit, transmit_over, BoundaryPolicy, ChannelMedium, ChannelParams,
    Coding, L2SetMedium, Pipeline,
};
use gpubox_bench::{report, AttackSetup};
use gpubox_sim::SchedulerKind;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn main() {
    report::header(
        "Extension — Hamming(7,4) coding over the covert channel",
        "raw vs. coded residual error at 4 / 8 / 16 parallel sets",
    );
    let mut setup = AttackSetup::prepare(4711);
    let pairs = setup.aligned_pairs(16);
    let params = ChannelParams::default();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let data_bytes: Vec<u8> = (0..400).map(|_| rng.gen()).collect();
    let data_bits = bits_from_bytes(&data_bytes);

    let mut rows = Vec::new();
    for &k in &[4usize, 8, 16] {
        // Raw transmission (the medium's default pipeline, no coding).
        let raw = transmit(
            &mut setup.sys,
            setup.trojan,
            setup.spy,
            &pairs[..k],
            &data_bits,
            &params,
            setup.thresholds,
        )
        .expect("raw transmission");

        // The same medium with a coding stage: Hamming(7,4) behind a
        // depth-64 block interleaver, so congestion bursts spread over
        // many codewords before single-error correction runs.
        let medium = L2SetMedium {
            trojan: setup.trojan,
            spy: setup.spy,
            pairs: &pairs[..k],
            thresholds: setup.thresholds,
        };
        let pipeline = Pipeline {
            decoder: medium.default_decoder(),
            coding: Coding::Hamming74 { interleave_depth: 64 },
        };
        let coded = transmit_over(
            &mut setup.sys,
            &medium,
            &data_bits,
            &params,
            &pipeline,
            SchedulerKind::Auto,
        )
        .expect("coded transmission");

        // Soft-decision stage: matched-filter decoding feeds its slot
        // margins into least-confidence Hamming correction. The same
        // traces are then re-decoded with hard-decision Hamming, so the
        // soft-vs-hard comparison is apples to apples.
        let soft_pipeline = Pipeline::matched_filter(BoundaryPolicy::TwoMeans)
            .with_coding(Coding::Hamming74Soft { interleave_depth: 64 });
        let soft = transmit_over(
            &mut setup.sys,
            &medium,
            &data_bits,
            &params,
            &soft_pipeline,
            SchedulerKind::Auto,
        )
        .expect("soft-coded transmission");
        let hard_errors = {
            let hard_pipeline = Pipeline::matched_filter(BoundaryPolicy::TwoMeans)
                .with_coding(Coding::Hamming74 { interleave_depth: 64 });
            let (hard_bits, _) =
                redecode_traces(&soft.traces, &params, &hard_pipeline, data_bits.len());
            hard_bits.iter().zip(&data_bits).filter(|(a, b)| a != b).count()
        };
        assert!(
            soft.bit_errors <= hard_errors,
            "{k} sets: soft-decision ECC ({}) must never do worse than \
             hard-decision ({hard_errors}) on the same traces",
            soft.bit_errors
        );

        rows.push((
            k,
            format!("{:.2}%", raw.error_rate * 100.0),
            format!(
                "{:.3}% ({} fixed)",
                coded.error_rate * 100.0,
                coded.ecc_corrections
            ),
            format!(
                "{:.3}% soft vs {:.3}% hard",
                soft.error_rate * 100.0,
                hard_errors as f64 / data_bits.len() as f64 * 100.0
            ),
        ));
    }
    report::table4(
        ("sets", "raw error", "coded+interleaved residual", "matched filter + soft ECC"),
        &rows,
    );
    println!(
        "\ncoding costs {:.0}% of the goodput; interleaving (depth 64) spreads\n\
         congestion bursts across codewords so single-error correction can\n\
         repair them. The soft stage decodes the same matched-filter traces\n\
         with least-confidence correction and is asserted never worse than\n\
         hard-decision Hamming at every sweep point.",
        (1.0 - ECC_RATE) * 100.0
    );
}
