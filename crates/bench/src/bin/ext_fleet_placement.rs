//! Extension — fleet-scale placement-policy exposure sweep.
//!
//! Sweeps placement policy × offered load × fleet size over a pool of
//! shared-nothing 4-GPU nodes and decodes each run into the paper's
//! exposure vocabulary: co-residency probability, attack-window
//! percentiles, and the fraction of windows long enough for the 94.0
//! KB/s L2 and 28.6 KB/s NVLink covert channels to move at least one
//! frame.  Every run is driven by the same counter-indexed arrival
//! stream, so the only variable across a row group is the policy.
//!
//! CI gates enforced in-process:
//!   * fleet size >= 256 nodes (the `--quick` flag relaxes this for
//!     local iteration only);
//!   * heap and linear node schedulers produce bit-identical exposure
//!     tables on representative cells;
//!   * serial and multi-threaded stepping produce bit-identical
//!     exposure tables on representative cells (CI additionally diffs
//!     the full decoded table across `--threads=1` and `--threads=N`
//!     invocations byte-for-byte);
//!   * the per-node MetricSet fold equals the folded SystemStats
//!     export on every run (fold == total);
//!   * placed + queued == arrived on every run (conservation);
//!   * ChannelAware co-residency < Pack co-residency at equal
//!     utilization in every (load, fleet-size) cell.
//!
//! Usage: ext_fleet_placement [--nodes=N] [--threads=K] [--horizon=C] [--quick]

use gpubox_bench::report;
use gpubox_sim::{
    ChannelAware, FleetConfig, FleetReport, FleetRunner, FleetScheduler, Pack, PlacementPolicy,
    RandomPlacement, Spread,
};

const SEED: u64 = 2024;
const POLICIES: [&str; 4] = ["pack", "spread", "random", "channel_aware"];

fn policy(name: &str, tenants: u32) -> Box<dyn PlacementPolicy> {
    match name {
        "pack" => Box::new(Pack),
        "spread" => Box::new(Spread),
        "random" => Box::new(RandomPlacement::new(SEED)),
        "channel_aware" => Box::new(ChannelAware::new(tenants)),
        other => panic!("unknown policy {other}"),
    }
}

fn cell_config(
    nodes: u32,
    util: f64,
    horizon: u64,
    threads: usize,
    scheduler: FleetScheduler,
) -> FleetConfig {
    let mut cfg = FleetConfig::new(nodes, SEED);
    // Widen the job-duration band past the 28.6 KB/s link-channel frame
    // threshold (~414k cycles at the p100 clock) so the slow channel's
    // exposure column is live; the default 400k cap sits just under it.
    cfg.arrivals.min_duration = 60_000;
    cfg.arrivals.max_duration = 900_000;
    cfg = cfg.with_target_utilization(util);
    cfg.horizon = horizon;
    cfg.threads = threads;
    cfg.scheduler = scheduler;
    cfg.verify_fold = true;
    cfg
}

fn run_cell(
    nodes: u32,
    util: f64,
    horizon: u64,
    threads: usize,
    scheduler: FleetScheduler,
    name: &str,
) -> FleetReport {
    let cfg = cell_config(nodes, util, horizon, threads, scheduler);
    let tenants = cfg.arrivals.tenants;
    FleetRunner::new(cfg, policy(name, tenants)).run()
}

#[derive(serde::Serialize)]
struct SweepRow {
    policy: String,
    load: String,
    nodes: u32,
    utilization: f64,
    coresidency: f64,
    arrived: u64,
    placed: u64,
    completed: u64,
    queued_end: u64,
    windows: u64,
    window_p50: u64,
    window_p95: u64,
    window_p99: u64,
    l2_exposed_windows: u64,
    link_exposed_windows: u64,
    nodes_recycled: u64,
    accesses: u64,
}

#[derive(serde::Serialize)]
struct Artifact {
    nodes: u32,
    horizon: u64,
    table_fingerprint: String,
    rows: Vec<SweepRow>,
}

fn main() {
    let mut nodes: u32 = 256;
    let mut threads: usize = 1;
    let mut horizon: u64 = 1_500_000;
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--nodes=") {
            nodes = v.parse().expect("--nodes=N");
        } else if let Some(v) = arg.strip_prefix("--threads=") {
            threads = v.parse().expect("--threads=K");
        } else if let Some(v) = arg.strip_prefix("--horizon=") {
            horizon = v.parse().expect("--horizon=C");
        } else if arg == "--quick" {
            quick = true;
        } else {
            panic!("unknown argument {arg}");
        }
    }
    assert!(
        quick || nodes >= 256,
        "the CI gate requires a fleet of >= 256 nodes (got {nodes}); pass --quick for local runs"
    );

    report::header(
        "Extension — fleet placement-policy exposure sweep",
        "co-residency and covert-channel attack windows vs placement policy, load and fleet size",
    );
    println!(
        "fleet: {nodes} nodes x 4 GPU slots, horizon {horizon} cycles, {threads} worker thread(s)\n"
    );

    let loads = [("lo", 0.35_f64), ("hi", 0.75_f64)];
    let sizes = [(nodes / 4).max(1), nodes];

    let mut lines: Vec<String> = Vec::new();
    let mut rows: Vec<SweepRow> = Vec::new();
    let mut display: Vec<(String, String, String, String)> = Vec::new();

    for &fleet_nodes in &sizes {
        for &(load_name, util) in &loads {
            let mut cell: Vec<(&str, FleetReport)> = Vec::new();
            for &p in &POLICIES {
                let r = run_cell(fleet_nodes, util, horizon, threads, FleetScheduler::Linear, p);
                // Fold-equals-total and conservation gates on every run.
                assert_eq!(
                    r.fold_matches_total(),
                    Some(true),
                    "per-node MetricSet fold diverged from SystemStats total \
                     ({p}, load={load_name}, nodes={fleet_nodes})"
                );
                let e = &r.exposure;
                assert_eq!(
                    e.placed + e.queued_end,
                    e.arrived,
                    "conservation violated ({p}, load={load_name}, nodes={fleet_nodes})"
                );
                lines.push(r.exposure_line(&format!(
                    "policy={p} load={load_name} nodes={fleet_nodes}"
                )));
                display.push((
                    format!("{p} load={load_name} n={fleet_nodes}"),
                    format!("{:.3}", r.utilization()),
                    format!("{:.4}", e.coresidency()),
                    format!(
                        "{} / {} / {}",
                        e.windows, e.l2_exposed_windows, e.link_exposed_windows
                    ),
                ));
                rows.push(SweepRow {
                    policy: p.to_string(),
                    load: load_name.to_string(),
                    nodes: fleet_nodes,
                    utilization: r.utilization(),
                    coresidency: e.coresidency(),
                    arrived: e.arrived,
                    placed: e.placed,
                    completed: e.completed,
                    queued_end: e.queued_end,
                    windows: e.windows,
                    window_p50: e.window_hist.p50(),
                    window_p95: e.window_hist.p95(),
                    window_p99: e.window_hist.p99(),
                    l2_exposed_windows: e.l2_exposed_windows,
                    link_exposed_windows: e.link_exposed_windows,
                    nodes_recycled: e.nodes_recycled,
                    accesses: e.accesses,
                });
                cell.push((p, r));
            }

            // The headline security gate: channel-aware placement must
            // cut cross-tenant co-residency below packing at equal
            // achieved utilization.
            let pack = &cell.iter().find(|(p, _)| *p == "pack").unwrap().1;
            let ca = &cell
                .iter()
                .find(|(p, _)| *p == "channel_aware")
                .unwrap()
                .1;
            let util_gap = (pack.utilization() - ca.utilization()).abs();
            assert!(
                util_gap < 0.02,
                "utilization not comparable (gap {util_gap:.4}) at load={load_name}, \
                 nodes={fleet_nodes}"
            );
            assert!(
                pack.exposure.coresident_cycles > 0,
                "pack must co-locate tenants at load={load_name}, nodes={fleet_nodes}"
            );
            assert!(
                ca.exposure.coresident_cycles < pack.exposure.coresident_cycles,
                "channel-aware placement must reduce cross-tenant co-residency \
                 ({} vs pack {}) at load={load_name}, nodes={fleet_nodes}",
                ca.exposure.coresident_cycles,
                pack.exposure.coresident_cycles
            );
        }
    }

    // Bit-identity gates on representative cells: the full-size fleet
    // at high load, under packing (densest interleavings) and
    // channel-aware (most placement state).
    let alt_threads = if threads == 1 { 4 } else { 1 };
    for &p in &["pack", "channel_aware"] {
        let base = run_cell(nodes, 0.75, horizon, threads, FleetScheduler::Linear, p);
        let heap = run_cell(nodes, 0.75, horizon, threads, FleetScheduler::Heap, p);
        assert_eq!(
            base.exposure_line("row"),
            heap.exposure_line("row"),
            "heap and linear node schedulers diverged ({p})"
        );
        assert_eq!(base.metrics, heap.metrics, "scheduler metrics diverged ({p})");
        let par = run_cell(nodes, 0.75, horizon, alt_threads, FleetScheduler::Linear, p);
        assert_eq!(
            base.exposure_line("row"),
            par.exposure_line("row"),
            "{threads}-thread and {alt_threads}-thread stepping diverged ({p})"
        );
        assert_eq!(base.metrics, par.metrics, "thread-count metrics diverged ({p})");
    }
    println!(
        "bit-identity: heap==linear and {threads}-thread=={alt_threads}-thread on \
         representative cells (asserted)\n"
    );

    report::table4(
        ("configuration", "util", "coresidency", "windows/l2/link"),
        &display
            .iter()
            .map(|(a, b, c, d)| (a.as_str(), b.as_str(), c.as_str(), d.as_str()))
            .collect::<Vec<_>>(),
    );

    let table = lines.join("\n") + "\n";
    let fp = report::fnv1a_bits(table.as_bytes());
    println!("\ndecoded exposure table fingerprint: {fp:016x}");
    println!(
        "channel-aware placement holds cross-tenant co-residency below packing at\n\
         equal utilization in every cell; the decoded table is identical across\n\
         schedulers and thread counts (diffed byte-for-byte in CI)."
    );

    if std::fs::create_dir_all("results").is_ok() {
        let path = format!("results/fleet_exposure_t{threads}.txt");
        std::fs::write(&path, &table).expect("write exposure table");
        println!("\n[artefact] {path}");
    }
    report::write_json(
        "EXT_fleet_placement",
        &Artifact {
            nodes,
            horizon,
            table_fingerprint: format!("{fp:016x}"),
            rows,
        },
    );
}
