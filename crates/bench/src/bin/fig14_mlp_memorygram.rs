//! Fig. 14 — memorygrams of MLP training with 128 vs. 512 hidden neurons.
//!
//! The wider model's weight traffic lights up more sets more intensely.

use gpubox_attacks::side::{record_memorygram, summarize_mlp_gram, RecorderConfig};
use gpubox_bench::{report, setup::victim_with_duration, SideChannelSetup};
use gpubox_sim::GpuId;
use gpubox_workloads::MlpTraining;

fn main() {
    report::header(
        "Fig. 14 — memorygram of the MLP victim, 128 vs. 512 neurons",
        "Sec. V-B: wider hidden layer -> denser memorygram",
    );
    let mut setup = SideChannelSetup::prepare(1414, 256);
    let mut intensities = Vec::new();
    for neurons in [128usize, 512] {
        let victim = setup.sys.create_process(GpuId::new(0));
        let w = MlpTraining::with_hidden(neurons);
        let (agent, duration) = victim_with_duration(&mut setup.sys, victim, &w);
        setup.sys.flush_l2(GpuId::new(0));
        let gram = record_memorygram(
            &mut setup.sys,
            setup.spy,
            &setup.monitored,
            setup.thresholds,
            &RecorderConfig {
                duration,
                sweep_gap: 0,
            },
            vec![Box::new(agent)],
        )
        .expect("memorygram");
        let stats = summarize_mlp_gram(&gram);
        println!(
            "\n--- MLP with {neurons} hidden neurons --- (avg {:.1} misses/set)",
            stats.avg_misses_per_set
        );
        print!("{}", gram.to_ascii(16, 72));
        intensities.push(stats.avg_misses_per_set);
    }
    println!(
        "\nshape check: 512-neuron capture denser than 128-neuron = {}",
        intensities[1] > intensities[0]
    );
}
