//! Fig. 12 — application-fingerprinting confusion matrix.
//!
//! Collects labelled memorygrams for the six victims (each run uses fresh
//! buffer placements, so footprints shift across runs exactly as the paper
//! notes), trains the classifier, and evaluates on a held-out test set.
//! Paper: 99.91% accuracy over 7200 test samples.
//!
//! Usage: `fig12_confusion_matrix [samples_per_class] [shards]`
//!
//! Capture fans out over `shards` independent spy setups via
//! [`TrialRunner`]; the dataset depends on the shard count (each shard is
//! its own machine) but not on how many threads execute the shards.

use gpubox_attacks::side::{record_memorygram, FingerprintDataset, RecorderConfig};
use gpubox_attacks::TrialRunner;
use gpubox_bench::{report, setup::victim_with_duration, SideChannelSetup};
use gpubox_classify::Memorygram;
use gpubox_sim::GpuId;
use gpubox_workloads::{
    BlackScholes, Histogram, MatMul, QuasiRandom, VectorAdd, WalshTransform, Workload,
};

fn workload(class: usize, seed: u64) -> Box<dyn Workload> {
    match class {
        0 => Box::new(BlackScholes::default().with_seed(seed)),
        1 => Box::new(Histogram::default().with_seed(seed)),
        2 => Box::new(MatMul::default().with_seed(seed)),
        3 => Box::new(QuasiRandom::default()),
        4 => Box::new(VectorAdd::default().with_seed(seed)),
        _ => Box::new(WalshTransform::default().with_seed(seed)),
    }
}

fn capture(setup: &mut SideChannelSetup, class: usize, seed: u64) -> Memorygram {
    let victim = setup.sys.create_process(GpuId::new(0));
    let w = workload(class, seed);
    let (agent, duration) = victim_with_duration(&mut setup.sys, victim, w.as_ref());
    setup.sys.flush_l2(GpuId::new(0));
    record_memorygram(
        &mut setup.sys,
        setup.spy,
        &setup.monitored,
        setup.thresholds,
        &RecorderConfig {
            duration,
            sweep_gap: 0,
        },
        vec![Box::new(agent)],
    )
    .expect("memorygram capture")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let per_class: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(40);
    let shards: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(16)
    });
    report::header(
        "Fig. 12 — fingerprinting confusion matrix",
        "Sec. V-A: 99.91% accuracy over 6 applications",
    );
    println!("collecting {per_class} samples/class over {shards} parallel shards ...");

    let labels = gpubox_workloads::standard_labels();
    let jobs: Vec<(usize, u64)> = (0..6usize)
        .flat_map(|c| (0..per_class as u64).map(move |s| (c, s)))
        .collect();

    // One spy setup per shard, each shard owning a strided slice of the
    // jobs; shards run in parallel with deterministic per-shard seeds.
    let shard_jobs: Vec<Vec<(usize, u64)>> = (0..shards)
        .map(|t| jobs.iter().skip(t).step_by(shards).copied().collect())
        .collect();
    let collected: Vec<Vec<(Memorygram, usize)>> =
        TrialRunner::new(7000).run_over(shard_jobs, |trial, my_jobs| {
            let mut setup = SideChannelSetup::prepare(trial.seed, 256);
            my_jobs
                .into_iter()
                .map(|(class, seed)| {
                    (
                        capture(&mut setup, class, 100 + seed * 7 + class as u64),
                        class,
                    )
                })
                .collect()
        });

    let mut ds = FingerprintDataset::new(labels.clone());
    for (gram, class) in collected.into_iter().flatten() {
        ds.push(gram, class);
    }
    println!("collected {} samples; training classifier ...", ds.len());
    let rep = ds.train_and_evaluate(0.5, 0.1, 99);

    println!("\nvalidation accuracy: {:.2}%", rep.val_accuracy * 100.0);
    println!(
        "test accuracy:       {:.2}%  (paper: 99.91%)",
        rep.test_accuracy * 100.0
    );
    println!("k-NN baseline:       {:.2}%", rep.knn_test_accuracy * 100.0);
    println!("\nconfusion matrix (test set):");
    let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    println!("{}", rep.confusion.render(&label_refs));
    println!("per-class recall:");
    for (l, r) in labels.iter().zip(rep.confusion.per_class_recall()) {
        println!("  {l}: {:.2}%", r * 100.0);
    }
    report::write_json("fig12_confusion", &rep.confusion);
}
