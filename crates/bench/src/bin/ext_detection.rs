//! Extension — **online covert-channel detection**: the ROC-style
//! sweep of the streaming monitor ([`gpubox_sim::monitor`]) against
//! both channel families, a no-attack control, an evasion sweep, and
//! the detect-then-throttle response arm.
//!
//! The PR 5 defences (`ext_fabric_defense` / `ext_partition_defense`)
//! are *always on*: they cost benign tenants 8–15% throughput whether
//! or not anyone is attacking. This binary closes the defence
//! taxonomy's missing column — prevent / **detect** / respond — by
//! running the per-window [`Monitor`] (EWMA residual, one-sided CUSUM
//! and slot-clock autocorrelation over diffed `SystemStats` counters)
//! over:
//!
//! - a **benign multi-tenant mix** (the `ext_multi_tenant_noise`
//!   recipe) across several seeds — the no-attack control that fixes
//!   the false-positive column;
//! - the **NVLink-congestion trojan** launched into the same benign
//!   mix after the monitor's warm-up, across an **evasion sweep**
//!   (duty cycle × slot jitter, [`ChannelParams::trojan_duty_pct`] /
//!   [`ChannelParams::trojan_slot_jitter`]) — detection latency vs
//!   trojan stealth;
//! - the **L2 Prime+Probe trojan** (offline phase included, via
//!   [`AttackSetup`]) launched into the same mix — the cache-side
//!   family, detected through per-GPU `l2_misses` rather than link
//!   counters;
//! - the **respond arm**: the noiseless link channel under (a) no
//!   defence, (b) the PR 5 full-strength grant pacing always on, (c)
//!   the same pacing deployed *only on alarmed links* at first alarm
//!   ([`MultiGpuSystem::set_qos`] + [`QosScope::links_mask`]) —
//!   detect-then-throttle;
//! - a two-node **fleet health** scenario: one clean node, one node
//!   under attack, folded through [`FleetMonitor`] into per-tenant
//!   suspicion scores and a Prometheus-text artifact.
//!
//! CI gates enforced in-process:
//! - **zero false alarms** on every benign control seed (default
//!   detector config);
//! - **both channel families detected before a 64-bit payload
//!   completes** (full-duty trojans, default config);
//! - the responsive arm matches the always-on arm's attack degradation
//!   (BER >= 25%) at **strictly lower benign cost**;
//! - detection rows are bit-identical across heap/linear schedulers,
//!   and the decoded ROC table is byte-identical across `--threads=1`
//!   and `--threads=4` invocations (diffed in CI, like
//!   `ext_fleet_placement`).
//!
//! Usage: `ext_detection [--threads=N] [--seed=S]`

use gpubox_attacks::covert::stripe_bits;
use gpubox_attacks::{
    redecode_traces, BoundaryPolicy, ChannelMedium, ChannelParams, L2SetMedium, LinkChannel,
    LinkCongestionMedium, Pipeline, TrialRunner,
};
use gpubox_bench::{report, AttackSetup};
use gpubox_sim::fleet::TenantId;
use gpubox_sim::telemetry::MetricSet;
use gpubox_sim::{
    Agent, Engine, FabricConfig, FleetMonitor, GpuId, Monitor, MonitorConfig, MultiGpuSystem,
    NoiseAgent, NoiseConfig, QosConfig, QosScope, SchedulerKind, SystemConfig, VirtAddr,
};
use gpubox_workloads::{agent_for, Histogram, VectorAdd, Workload};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const SEED: u64 = 0xDE7EC;
/// Benign-mix horizon, cycles (400 monitor windows).
const BENIGN_CYCLES: u64 = 600_000;
/// Attack launch cycle: past the monitor's 64-window warm-up plus a
/// 16-window armed-but-quiet margin, so a pre-attack alarm is a false
/// positive by construction.
const ATTACK_START: u64 = 120_000;

/// The detector configurations swept (the ROC axis).
fn detector_configs() -> Vec<(&'static str, MonitorConfig)> {
    vec![
        ("default", MonitorConfig::default()),
        (
            "sensitive",
            MonitorConfig {
                ewma_floor: 100,
                cusum_drift_floor: 100,
                cusum_threshold: 4_000,
                min_power: 10_000,
                corr_threshold_milli: 600,
                ..MonitorConfig::default()
            },
        ),
    ]
}

/// The PR 5 full-strength defence reused by both respond arms: the
/// `ext_fabric_defense` "pacing 3k" point. It breaks the link channel
/// outright *and* — unlike the token-bucket rate limits, whose benign
/// cost is ~zero on this mix — taxes every fabric-crossing tenant,
/// which is exactly the cost the responsive arm exists to avoid.
fn full_qos() -> QosConfig {
    QosConfig::off().with_pacing(3_000)
}

fn shared_config(seed: u64, qos: QosConfig) -> SystemConfig {
    let mut cfg = SystemConfig::dgx1()
        .with_seed(seed)
        .with_fabric(FabricConfig::nvlink_v1().with_qos(qos));
    cfg.allow_indirect_peer = true;
    cfg
}

fn seeded_payload(seed: u64, bits: usize) -> Vec<u8> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..bits).map(|_| (rng.gen::<u32>() & 1) as u8).collect()
}

/// The `ext_multi_tenant_noise` benign recipe: 8 tenants —
/// vectoradd/histogram trace replays plus bursty noise kernels homed
/// one NVLink hop away, so half the mix streams over the monitored
/// fabric.
fn benign_agents(sys: &mut MultiGpuSystem) -> Vec<Box<dyn Agent>> {
    let mut agents: Vec<Box<dyn Agent>> = Vec::new();
    for t in 0..8usize {
        let gpu = GpuId::new((t % 4) as u8);
        let pid = sys.create_process(gpu);
        match t % 4 {
            0 => {
                let w = VectorAdd::new(2048 + 256 * t);
                agents.push(Box::new(agent_for(sys, pid, &w as &dyn Workload).unwrap()));
            }
            1 => {
                let w = Histogram::new(2048 + 256 * t, 32);
                agents.push(Box::new(agent_for(sys, pid, &w as &dyn Workload).unwrap()));
            }
            _ => {
                let remote = GpuId::new((t % 4 + 4) as u8);
                sys.enable_peer_access(pid, remote).unwrap();
                let buf = sys.malloc_on(pid, remote, 128 * 1024).unwrap();
                agents.push(Box::new(NoiseAgent::new(
                    pid,
                    buf,
                    1024,
                    128,
                    NoiseConfig {
                        burst_len: 24,
                        idle_between_bursts: 2_500 + 173 * t as u64,
                        seed: 11 + t as u64,
                    },
                )));
            }
        }
    }
    agents
}

/// Steps `eng` window-by-window feeding `mon`, optionally deploying
/// `respond` (scoped to the alarmed links) at the first alarm. Returns
/// the deploy cycle, if any.
fn windowed_with_respond(
    eng: &mut Engine<'_>,
    mon: &mut Monitor,
    until: u64,
    respond: Option<&QosConfig>,
) -> Option<u64> {
    let w = mon.config().window_cycles;
    let mut deployed = None;
    loop {
        let next = (mon.windows_observed() + 1) * w;
        let end = next.min(until);
        eng.run(end).expect("engine run");
        mon.observe(eng.system().stats());
        if deployed.is_none() && mon.alarmed() {
            if let Some(q) = respond {
                let scoped = q.with_scope(QosScope::links_mask(mon.alarmed_links()));
                eng.system_mut().set_qos(scoped).expect("responsive deploy");
                deployed = Some(end);
            }
        }
        if end >= until || eng.all_done() {
            return deployed;
        }
    }
}

/// One benign-control run: the 8-tenant mix, no attacker, monitor on.
#[derive(Debug, Clone, PartialEq)]
struct BenignRun {
    alarms: usize,
    issued_accesses: u64,
    deploy_cycle: Option<u64>,
}

fn run_benign_monitored(
    mon_cfg: &MonitorConfig,
    qos: QosConfig,
    respond: Option<&QosConfig>,
    seed: u64,
    sched: SchedulerKind,
) -> BenignRun {
    let mut sys = MultiGpuSystem::new(shared_config(seed, qos));
    let agents = benign_agents(&mut sys);
    let num_links = sys.config().topology.num_links();
    let num_gpus = sys.config().num_gpus as usize;
    let mut mon = Monitor::new(mon_cfg.clone(), num_links, num_gpus);
    let mut eng = Engine::with_scheduler(&mut sys, sched);
    for (i, a) in agents.into_iter().enumerate() {
        eng.add_agent(a, 53 * i as u64);
    }
    mon.prime(eng.system().stats());
    let deploy_cycle = windowed_with_respond(&mut eng, &mut mon, BENIGN_CYCLES, respond);
    let alarms = mon.channels_alarmed();
    drop(eng);
    BenignRun {
        alarms,
        issued_accesses: sys.stats().total().issued_accesses,
        deploy_cycle,
    }
}

/// One attack-detection run, comparable bit-for-bit across schedulers
/// and fan-outs.
#[derive(Debug, Clone, PartialEq)]
struct DetectOutcome {
    alarmed: bool,
    /// Cycles from the trojan launch to the latched alarm.
    latency: Option<u64>,
    /// Full bit slots the trojan drove before the alarm.
    slots_leaked: Option<u64>,
    detector: String,
    channel: String,
    /// Alarms latched before the trojan launch (false positives).
    pre_attack_alarms: usize,
    /// Total alarm-flagged windows across the latched channels — the
    /// trojan's contention footprint as the monitor scores it.
    /// Time-to-first-alarm saturates at the latch floor on a quiet
    /// link, and the sweep shows the footprint barely moves either:
    /// duty-cycle stretching shrinks each burst but not the number of
    /// windows the burst lands in, so per-window CUSUM keeps flagging.
    suspicion: u64,
}

fn outcome_from(mon: &Monitor, slot_cycles: u64) -> DetectOutcome {
    let pre_attack_alarms = mon
        .alarms()
        .iter()
        .filter(|a| a.cycle < ATTACK_START)
        .count();
    let first = mon.alarms().iter().find(|a| a.cycle >= ATTACK_START);
    DetectOutcome {
        alarmed: first.is_some(),
        latency: first.map(|a| a.cycle - ATTACK_START),
        slots_leaked: first.map(|a| (a.cycle - ATTACK_START) / slot_cycles),
        detector: first.map_or_else(String::new, |a| a.detector.name().to_string()),
        channel: first.map_or_else(String::new, |a| format!("{:?}", a.channel)),
        pre_attack_alarms,
        suspicion: mon.alarms().iter().map(|a| mon.suspicion(a.channel)).sum(),
    }
}

/// Launches the NVLink-congestion trojan (with the given evasion
/// knobs) into the benign mix after the monitor's warm-up and measures
/// time-to-detection.
fn run_link_detect(
    mon_cfg: &MonitorConfig,
    duty: u32,
    jitter: u64,
    payload: &[u8],
    seed: u64,
    sched: SchedulerKind,
) -> DetectOutcome {
    let mut sys = MultiGpuSystem::new(shared_config(seed, QosConfig::off()));
    let agents = benign_agents(&mut sys);
    let home = GpuId::new(5);
    let page = sys.config().page_size;
    let trojan = sys.create_process(GpuId::new(1));
    let spy = sys.create_process(GpuId::new(0));
    sys.enable_peer_access(trojan, home).unwrap();
    sys.enable_peer_access(spy, home).unwrap();
    let tb = sys.malloc_on(trojan, home, 32 * page).unwrap();
    let sb = sys.malloc_on(spy, home, 2 * page).unwrap();
    let tl: Vec<VirtAddr> = (0..32).map(|i| tb.offset(i * page)).collect();
    let sl: Vec<VirtAddr> = (0..2).map(|i| sb.offset(i * page)).collect();
    let params = ChannelParams {
        spy_gap: 300,
        trojan_duty_pct: duty,
        trojan_slot_jitter: jitter,
        ..Default::default()
    };
    let medium = LinkCongestionMedium {
        trojan,
        spy,
        channel: LinkChannel {
            trojan_lines: &tl,
            spy_lines: &sl,
            trojan_streams: 4,
        },
    };
    medium.prepare(&mut sys).expect("medium prepare");
    let num_links = sys.config().topology.num_links();
    let num_gpus = sys.config().num_gpus as usize;
    let mut mon = Monitor::new(mon_cfg.clone(), num_links, num_gpus);
    let frame = params.frame(payload);
    let listen = ATTACK_START + (frame.len() as u64 + 4) * params.slot_cycles;
    let mut eng = Engine::with_scheduler(&mut sys, sched);
    for (i, a) in agents.into_iter().enumerate() {
        eng.add_agent(a, 53 * i as u64);
    }
    medium.install_lane_deferred(&mut eng, 0, &frame, &params, listen, ATTACK_START);
    mon.prime(eng.system().stats());
    windowed_with_respond(&mut eng, &mut mon, listen + 16 * params.slot_cycles, None);
    outcome_from(&mon, params.slot_cycles)
}

/// Launches the L2 Prime+Probe trojan (offline phase under no defence,
/// then the transmission deferred past warm-up) into the benign mix.
fn run_l2_detect(
    mon_cfg: &MonitorConfig,
    payload: &[u8],
    seed: u64,
    sched: SchedulerKind,
) -> DetectOutcome {
    let params = ChannelParams::default();
    let mut setup = AttackSetup::prepare_fabric_qos(seed, GpuId::new(0), GpuId::new(5), QosConfig::off());
    let pairs = setup.aligned_pairs(4);
    let agents = benign_agents(&mut setup.sys);
    let medium = L2SetMedium {
        trojan: setup.trojan,
        spy: setup.spy,
        pairs: &pairs,
        thresholds: setup.thresholds,
    };
    medium.prepare(&mut setup.sys).expect("medium prepare");
    let num_links = setup.sys.config().topology.num_links();
    let num_gpus = setup.sys.config().num_gpus as usize;
    let mut mon = Monitor::new(mon_cfg.clone(), num_links, num_gpus);
    let stripes = stripe_bits(payload, pairs.len());
    let max_frame = stripes.iter().map(Vec::len).max().unwrap_or(0) + params.preamble_bits;
    let listen = ATTACK_START + (max_frame as u64 + 4) * params.slot_cycles;
    let mut eng = Engine::with_scheduler(&mut setup.sys, sched);
    for (i, a) in agents.into_iter().enumerate() {
        eng.add_agent(a, 53 * i as u64);
    }
    for (lane, stripe) in stripes.iter().enumerate() {
        let frame = params.frame(stripe);
        medium.install_lane_deferred(&mut eng, lane, &frame, &params, listen, ATTACK_START);
    }
    mon.prime(eng.system().stats());
    windowed_with_respond(&mut eng, &mut mon, listen + 16 * params.slot_cycles, None);
    outcome_from(&mon, params.slot_cycles)
}

/// One respond-arm run on the noiseless link channel.
#[derive(Debug, Clone, PartialEq)]
struct RespondOutcome {
    bit_errors: usize,
    deploy_cycle: Option<u64>,
    alarmed: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Arm {
    NoDefence,
    AlwaysOn,
    Responsive,
}

fn run_link_respond(arm: Arm, payload: &[u8], seed: u64, sched: SchedulerKind) -> RespondOutcome {
    let boot_qos = match arm {
        Arm::AlwaysOn => full_qos(),
        _ => QosConfig::off(),
    };
    let mut sys = MultiGpuSystem::new(shared_config(seed, boot_qos).noiseless());
    let home = GpuId::new(5);
    let page = sys.config().page_size;
    let trojan = sys.create_process(GpuId::new(1));
    let spy = sys.create_process(GpuId::new(0));
    sys.enable_peer_access(trojan, home).unwrap();
    sys.enable_peer_access(spy, home).unwrap();
    let tb = sys.malloc_on(trojan, home, 32 * page).unwrap();
    let sb = sys.malloc_on(spy, home, 2 * page).unwrap();
    let tl: Vec<VirtAddr> = (0..32).map(|i| tb.offset(i * page)).collect();
    let sl: Vec<VirtAddr> = (0..2).map(|i| sb.offset(i * page)).collect();
    let params = ChannelParams {
        spy_gap: 300,
        ..Default::default()
    };
    let medium = LinkCongestionMedium {
        trojan,
        spy,
        channel: LinkChannel {
            trojan_lines: &tl,
            spy_lines: &sl,
            trojan_streams: 4,
        },
    };
    medium.prepare(&mut sys).expect("medium prepare");
    let num_links = sys.config().topology.num_links();
    let num_gpus = sys.config().num_gpus as usize;
    let mut mon = Monitor::new(MonitorConfig::default(), num_links, num_gpus);
    let frame = params.frame(payload);
    let listen = ATTACK_START + (frame.len() as u64 + 4) * params.slot_cycles;
    let mut eng = Engine::with_scheduler(&mut sys, sched);
    let trace = medium.install_lane_deferred(&mut eng, 0, &frame, &params, listen, ATTACK_START);
    mon.prime(eng.system().stats());
    let respond_qos = full_qos();
    let respond = matches!(arm, Arm::Responsive).then_some(&respond_qos);
    let deploy_cycle =
        windowed_with_respond(&mut eng, &mut mon, listen + 16 * params.slot_cycles, respond);
    let alarmed = mon.alarmed();
    drop(eng);
    let (received, _) = redecode_traces(
        &[trace.samples()],
        &params,
        &Pipeline::vote(BoundaryPolicy::Quantile),
        payload.len(),
    );
    let bit_errors = received.iter().zip(payload).filter(|(a, b)| a != b).count();
    RespondOutcome {
        bit_errors,
        deploy_cycle,
        alarmed,
    }
}

/// The two-node fleet health scenario: node 0 runs the benign mix
/// clean, node 1 runs the same mix with the link trojan launched at
/// [`ATTACK_START`]; both monitors fold through [`FleetMonitor`] into
/// per-tenant suspicion and one mergeable [`MetricSet`].
fn run_fleet_health(payload: &[u8], seed: u64) -> (MetricSet, Vec<(u32, u64)>, usize) {
    let horizon = 450_000u64;
    // Node 0: clean.
    let mut sys0 = MultiGpuSystem::new(shared_config(seed ^ 0xF1EE7, QosConfig::off()));
    let agents0 = benign_agents(&mut sys0);
    // Node 1: benign mix + deferred link trojan.
    let mut sys1 = MultiGpuSystem::new(shared_config(seed, QosConfig::off()));
    let agents1 = benign_agents(&mut sys1);
    let home = GpuId::new(5);
    let page = sys1.config().page_size;
    let trojan = sys1.create_process(GpuId::new(1));
    let spy = sys1.create_process(GpuId::new(0));
    sys1.enable_peer_access(trojan, home).unwrap();
    sys1.enable_peer_access(spy, home).unwrap();
    let tb = sys1.malloc_on(trojan, home, 32 * page).unwrap();
    let sb = sys1.malloc_on(spy, home, 2 * page).unwrap();
    let tl: Vec<VirtAddr> = (0..32).map(|i| tb.offset(i * page)).collect();
    let sl: Vec<VirtAddr> = (0..2).map(|i| sb.offset(i * page)).collect();
    let params = ChannelParams {
        spy_gap: 300,
        ..Default::default()
    };
    let medium = LinkCongestionMedium {
        trojan,
        spy,
        channel: LinkChannel {
            trojan_lines: &tl,
            spy_lines: &sl,
            trojan_streams: 4,
        },
    };
    medium.prepare(&mut sys1).expect("medium prepare");

    let num_links = sys0.config().topology.num_links();
    let num_gpus = sys0.config().num_gpus as usize;
    let mut fleet = FleetMonitor::new(MonitorConfig::default(), 2, num_links, num_gpus, 8);
    let window = fleet.node(0).config().window_cycles;

    let mut eng0 = Engine::with_scheduler(&mut sys0, SchedulerKind::Heap);
    for (i, a) in agents0.into_iter().enumerate() {
        eng0.add_agent(a, 53 * i as u64);
    }
    let mut eng1 = Engine::with_scheduler(&mut sys1, SchedulerKind::Heap);
    for (i, a) in agents1.into_iter().enumerate() {
        eng1.add_agent(a, 53 * i as u64);
    }
    let frame = params.frame(payload);
    let listen = ATTACK_START + (frame.len() as u64 + 4) * params.slot_cycles;
    medium.install_lane_deferred(&mut eng1, 0, &frame, &params, listen, ATTACK_START);

    fleet.node_mut(0).prime(eng0.system().stats());
    fleet.node_mut(1).prime(eng1.system().stats());
    // Tenants 0/1 resident on the clean node, 2/3 on the attacked one.
    let mut w = 0u64;
    while w * window < horizon {
        let end = ((w + 1) * window).min(horizon);
        eng0.run(end).expect("node 0");
        fleet.observe_node(0, eng0.system().stats(), &[TenantId(0), TenantId(1)]);
        eng1.run(end).expect("node 1");
        fleet.observe_node(1, eng1.system().stats(), &[TenantId(2), TenantId(3)]);
        w += 1;
    }
    let suspicion: Vec<(u32, u64)> = (0..4).map(|t| (t, fleet.suspicion(TenantId(t)))).collect();
    let alarmed_nodes = fleet.nodes_alarmed();
    (fleet.fold(), suspicion, alarmed_nodes)
}

#[derive(serde::Serialize)]
struct RocRow {
    scenario: String,
    config: String,
    false_alarms: usize,
    detected: bool,
    latency_cycles: Option<u64>,
    slots_leaked: Option<u64>,
    detector: String,
    channel: String,
    suspicion: u64,
}

#[derive(serde::Serialize)]
struct Artifact {
    seed: u64,
    payload_bits: usize,
    rows: Vec<RocRow>,
    benign_cost_always_on: f64,
    benign_cost_responsive: f64,
    attack_ber_no_defence: f64,
    attack_ber_always_on: f64,
    attack_ber_responsive: f64,
    responsive_deploy_cycle: Option<u64>,
    table_fingerprint: String,
}

fn main() {
    let mut threads: usize = 1;
    let mut seed = SEED;
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--threads=") {
            threads = v.parse().expect("--threads=N");
        } else if let Some(v) = arg.strip_prefix("--seed=") {
            seed = v.parse().expect("--seed=S");
        } else {
            panic!("unknown argument {arg}");
        }
    }
    let payload = seeded_payload(seed, 64);
    let configs = detector_configs();

    report::header(
        "Extension — online covert-channel detection",
        "streaming EWMA/CUSUM/periodicity monitor: false positives, time-to-detection, evasion, respond",
    );

    let mut rows: Vec<RocRow> = Vec::new();

    // --- benign controls (the false-positive column) -------------------
    let benign_seeds = [seed + 10, seed + 11, seed + 12];
    let mut base_accesses = 0u64;
    for (cname, mcfg) in &configs {
        for (i, &s) in benign_seeds.iter().enumerate() {
            let r = run_benign_monitored(mcfg, QosConfig::off(), None, s, SchedulerKind::Heap);
            if *cname == "default" {
                assert_eq!(
                    r.alarms, 0,
                    "[gate] false alarm on benign control seed {s} (default config)"
                );
                if i == 0 {
                    base_accesses = r.issued_accesses;
                    // Scheduler bit-identity on the representative control.
                    let lin =
                        run_benign_monitored(mcfg, QosConfig::off(), None, s, SchedulerKind::Linear);
                    assert_eq!(r, lin, "benign control diverged across schedulers");
                }
            }
            rows.push(RocRow {
                scenario: format!("benign seed {}", i),
                config: cname.to_string(),
                false_alarms: r.alarms,
                detected: false,
                latency_cycles: None,
                slots_leaked: None,
                detector: String::new(),
                channel: String::new(),
                suspicion: 0,
            });
        }
    }

    // --- link-congestion trojan: detection vs evasion ------------------
    let evasion: Vec<(u32, u64)> = vec![(100, 0), (100, 1500), (60, 0), (60, 1500), (30, 0), (30, 1500)];
    let fan = |r: TrialRunner| {
        r.run(evasion.len(), |t| {
            let (duty, jitter) = evasion[t.index];
            run_link_detect(
                &configs[0].1,
                duty,
                jitter,
                &payload,
                seed,
                SchedulerKind::Heap,
            )
        })
    };
    let link_rows = if threads > 1 {
        fan(TrialRunner::new(seed))
    } else {
        fan(TrialRunner::serial(seed))
    };
    // The full-duty point again: serial fan-out and the linear scheduler
    // must agree bit-for-bit.
    let ser = TrialRunner::serial(seed).run(1, |_| {
        run_link_detect(&configs[0].1, 100, 0, &payload, seed, SchedulerKind::Heap)
    });
    assert_eq!(ser[0], link_rows[0], "fan-out changed the detection outcome");
    let lin = run_link_detect(&configs[0].1, 100, 0, &payload, seed, SchedulerKind::Linear);
    assert_eq!(lin, link_rows[0], "link detection diverged across schedulers");

    let link_deadline = (payload.len() + ChannelParams::default().preamble_bits) as u64
        * ChannelParams::default().slot_cycles;
    for ((duty, jitter), o) in evasion.iter().zip(&link_rows) {
        assert_eq!(
            o.pre_attack_alarms, 0,
            "false alarm before the link trojan launched (duty {duty}%)"
        );
        if *duty == 100 && *jitter == 0 {
            assert!(o.alarmed, "[gate] full-duty link trojan went undetected");
            assert!(
                o.latency.unwrap() < link_deadline,
                "[gate] link trojan detected only after the 64-bit payload completed \
                 ({} >= {link_deadline} cycles)",
                o.latency.unwrap()
            );
        }
        rows.push(RocRow {
            scenario: format!("link trojan duty={duty}% jitter={jitter}"),
            config: "default".into(),
            false_alarms: o.pre_attack_alarms,
            detected: o.alarmed,
            latency_cycles: o.latency,
            slots_leaked: o.slots_leaked,
            detector: o.detector.clone(),
            channel: o.channel.clone(),
            suspicion: o.suspicion,
        });
    }
    // The sensitive config on the stealthiest point.
    let stealthy = run_link_detect(&configs[1].1, 30, 1500, &payload, seed, SchedulerKind::Heap);
    rows.push(RocRow {
        scenario: "link trojan duty=30% jitter=1500".into(),
        config: "sensitive".into(),
        false_alarms: stealthy.pre_attack_alarms,
        detected: stealthy.alarmed,
        latency_cycles: stealthy.latency,
        slots_leaked: stealthy.slots_leaked,
        detector: stealthy.detector.clone(),
        channel: stealthy.channel.clone(),
        suspicion: stealthy.suspicion,
    });

    // --- L2 Prime+Probe trojan -----------------------------------------
    let l2 = run_l2_detect(&configs[0].1, &payload, seed, SchedulerKind::Heap);
    assert_eq!(l2.pre_attack_alarms, 0, "false alarm before the L2 trojan launched");
    assert!(l2.alarmed, "[gate] L2 trojan went undetected");
    // 64 bits striped over 4 lanes: the payload completes after the
    // longest lane frame (16 payload + 16 preamble slots).
    let l2_deadline =
        (64 / 4 + ChannelParams::default().preamble_bits) as u64 * ChannelParams::default().slot_cycles;
    assert!(
        l2.latency.unwrap() < l2_deadline,
        "[gate] L2 trojan detected only after the 64-bit payload completed \
         ({} >= {l2_deadline} cycles)",
        l2.latency.unwrap()
    );
    rows.push(RocRow {
        scenario: "l2 prime+probe trojan".into(),
        config: "default".into(),
        false_alarms: l2.pre_attack_alarms,
        detected: l2.alarmed,
        latency_cycles: l2.latency,
        slots_leaked: l2.slots_leaked,
        detector: l2.detector.clone(),
        channel: l2.channel.clone(),
        suspicion: l2.suspicion,
    });

    // --- respond arms: no defence / always-on / detect-then-throttle ---
    let none = run_link_respond(Arm::NoDefence, &payload, seed, SchedulerKind::Heap);
    let always = run_link_respond(Arm::AlwaysOn, &payload, seed, SchedulerKind::Heap);
    let responsive = run_link_respond(Arm::Responsive, &payload, seed, SchedulerKind::Heap);
    let ber = |e: usize| e as f64 / payload.len() as f64;
    assert!(
        ber(none.bit_errors) <= 0.05,
        "undefended link channel must decode ({} errors)",
        none.bit_errors
    );
    assert!(responsive.alarmed, "responsive arm never alarmed");
    assert!(
        responsive.deploy_cycle.is_some(),
        "responsive arm never deployed QoS"
    );
    assert!(
        ber(always.bit_errors) >= 0.25 && ber(responsive.bit_errors) >= 0.25,
        "[gate] both QoS arms must break the channel: always-on {:.1}% responsive {:.1}%",
        100.0 * ber(always.bit_errors),
        100.0 * ber(responsive.bit_errors)
    );

    // Benign cost of each arm on the no-attack mix: always-on pays the
    // PR 5 throughput tax around the clock; responsive deploys nothing
    // (zero alarms on the control) and costs nothing.
    let always_benign = run_benign_monitored(
        &configs[0].1,
        full_qos(),
        None,
        benign_seeds[0],
        SchedulerKind::Heap,
    );
    let responsive_qos = full_qos();
    let responsive_benign = run_benign_monitored(
        &configs[0].1,
        QosConfig::off(),
        Some(&responsive_qos),
        benign_seeds[0],
        SchedulerKind::Heap,
    );
    assert_eq!(
        responsive_benign.deploy_cycle, None,
        "responsive QoS deployed on a benign control"
    );
    let cost = |r: &BenignRun| 1.0 - r.issued_accesses as f64 / base_accesses as f64;
    let cost_always = cost(&always_benign);
    let cost_responsive = cost(&responsive_benign);
    assert!(
        cost_always > 0.0,
        "always-on QoS shows no benign cost ({cost_always:.4}) — nothing to save"
    );
    assert!(
        cost_responsive < cost_always,
        "[gate] responsive QoS must undercut the always-on benign cost \
         ({:.1}% vs {:.1}%)",
        100.0 * cost_responsive,
        100.0 * cost_always
    );

    // --- fleet health fold ---------------------------------------------
    let (fold, suspicion, alarmed_nodes) = run_fleet_health(&payload, seed);
    assert_eq!(alarmed_nodes, 1, "exactly the attacked node must alarm");
    assert_eq!(fold.counter("fleet.nodes"), 2);
    assert_eq!(fold.counter("fleet.nodes_alarmed"), 1);
    for &(t, s) in &suspicion {
        if t < 2 {
            assert_eq!(s, 0, "clean node's tenant {t} drew suspicion");
        } else {
            assert!(s > 0, "attacked node's tenant {t} drew no suspicion");
        }
    }

    // --- report ---------------------------------------------------------
    let mut table = String::new();
    table.push_str(&format!(
        "{:<38} | {:>9} | {:>3} | {:>8} | {:>12} | {:>6} | {:>9} | {:>11} | {}\n",
        "scenario", "config", "FP", "detected", "latency(cyc)", "slots", "suspicion", "detector", "channel"
    ));
    table.push_str(&format!("{}\n", "-".repeat(122)));
    for r in &rows {
        table.push_str(&format!(
            "{:<38} | {:>9} | {:>3} | {:>8} | {:>12} | {:>6} | {:>9} | {:>11} | {}\n",
            r.scenario,
            r.config,
            r.false_alarms,
            if r.detected { "yes" } else { "no" },
            r.latency_cycles.map_or("-".into(), |v| v.to_string()),
            r.slots_leaked.map_or("-".into(), |v| v.to_string()),
            r.suspicion,
            if r.detector.is_empty() { "-" } else { &r.detector },
            if r.channel.is_empty() { "-" } else { &r.channel },
        ));
    }
    table.push_str(&format!(
        "\nrespond arms (noiseless link channel, 64-bit payload):\n\
         {:>12} | {:>9} | {:>12}\n",
        "arm", "BER", "benign cost"
    ));
    for (label, o, c) in [
        ("no defence", &none, 0.0),
        ("always-on", &always, cost_always),
        ("responsive", &responsive, cost_responsive),
    ] {
        table.push_str(&format!(
            "{:>12} | {:>8.1}% | {:>11.1}%\n",
            label,
            100.0 * ber(o.bit_errors),
            100.0 * c
        ));
    }
    print!("{table}");
    println!(
        "\nfleet health: {alarmed_nodes}/2 nodes alarmed, per-tenant suspicion {:?}",
        suspicion
    );
    println!(
        "\nall gates passed: zero benign false alarms, both families detected\n\
         before a 64-bit payload completes, responsive QoS matches the\n\
         always-on arm's attack degradation at {:.1}% vs {:.1}% benign cost.\n\
         The evasion sweep's finding is negative for the attacker: duty-cycle\n\
         stretching and slot jitter leave both time-to-detection and the\n\
         flagged-window footprint essentially unchanged, because a bandwidth\n\
         trojan must still saturate the link inside every window it uses —\n\
         per-window CUSUM integrates exactly that. Stealth would require\n\
         hiding under co-resident benign load, which placement\n\
         (ext_fleet_placement) is the lever against.\n\
         Detection rows are bit-identical across schedulers and fan-outs\n\
         (asserted); CI diffs this table across --threads invocations.",
        100.0 * cost_responsive,
        100.0 * cost_always
    );

    let fp = report::fnv1a_bits(table.as_bytes());
    println!("\nROC table fingerprint: {fp:016x}");

    if std::fs::create_dir_all("results").is_ok() {
        let path = format!("results/detection_roc_t{threads}.txt");
        std::fs::write(&path, &table).expect("write ROC table");
        println!("[artefact] {path}");
        // Prometheus exposition of the fleet fold — the monitoring
        // surface a real deployment would scrape.
        let prom = fold.to_prometheus_text();
        std::fs::write("results/detection_metrics.prom", &prom).expect("write metrics.prom");
        println!("[artefact] results/detection_metrics.prom");
    }
    report::write_json(
        "EXT_detection",
        &Artifact {
            seed,
            payload_bits: payload.len(),
            rows,
            benign_cost_always_on: cost_always,
            benign_cost_responsive: cost_responsive,
            attack_ber_no_defence: ber(none.bit_errors),
            attack_ber_always_on: ber(always.bit_errors),
            attack_ber_responsive: ber(responsive.bit_errors),
            responsive_deploy_cycle: responsive.deploy_cycle,
            table_fingerprint: format!("{fp:016x}"),
        },
    );
}
