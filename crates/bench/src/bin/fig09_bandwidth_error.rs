//! Fig. 9 — covert channel bandwidth and error rate vs. parallel sets.
//!
//! Sends a long pseudo-random message striped over 1..16 aligned set
//! pairs. Bandwidth grows with the number of sets; port contention makes
//! the error rate grow too (the paper's best trade-off is 4 sets:
//! 3.95 MB/s at 1.3% error on the DGX-1; the simulator reproduces the
//! shape — see EXPERIMENTS.md for the absolute-scale discussion).
//!
//! Bandwidth is measured over the spy's **listen span** (the true
//! transmission window) since PR 4's unified channel pipeline; the PR 3
//! numbers divided by the engine's end-of-run clock, which includes a
//! 16-slot grace period (≈ 0.1% lower at 1 set, ≈ 2% at 16 sets). The
//! decoded bits are unaffected — asserted below against per-point golden
//! fingerprints captured at the PR 3 HEAD.

use gpubox_attacks::covert::bits_from_bytes;
use gpubox_attacks::{transmit, ChannelParams, TrialRunner};
use gpubox_bench::{report, AttackSetup};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    sets: usize,
    bandwidth_mb_s: f64,
    error_rate_pct: f64,
    /// Slot-latency percentiles (log2-bucket floors, cycles) from the
    /// spy's probe traces — see `ChannelReport::slot_latency_p50`.
    slot_latency_p50: u64,
    slot_latency_p95: u64,
    slot_latency_p99: u64,
}

/// Golden `(sets, bit_errors, fnv1a(received), duration_cycles)` per
/// sweep point. Recaptured when the offline phase moved to group-testing
/// discovery behind the canonical phase boundary
/// ([`gpubox_sim::MultiGpuSystem::canonicalize_phase`]): the boundary
/// reseeds the RNG stream that feeds transmission jitter, so the exact
/// bit streams shifted once (error counts stay in the same band; the
/// Fig. 9 trend is unchanged). Any *further* drift is a regression.
const GOLDEN: [(usize, usize, u64, u64); 5] = [
    (1, 1, 8143771210367023807, 72120403),
    (2, 26, 8475177978093723072, 36120960),
    (4, 111, 3670725890339465903, 18121015),
    (8, 280, 232588947012965682, 9121089),
    (16, 4435, 1939887522550343707, 4621502),
];

fn main() {
    report::header(
        "Fig. 9 — bandwidth and error rate vs. number of cache sets",
        "Sec. IV-C: bandwidth rises with sets, error rises too; paper best 3.95 MB/s @ 4 sets, 1.3% error",
    );
    let params = ChannelParams::default();

    // Pseudo-random payload (repeatable); scaled-down stand-in for the
    // paper's 1 Mb message.
    let mut rng = ChaCha8Rng::seed_from_u64(4242);
    let payload_bytes: Vec<u8> = (0..1500).map(|_| rng.gen()).collect();
    let payload = bits_from_bytes(&payload_bytes);

    // One independent machine per sweep point, fanned out in parallel by
    // the trial runner (bit-identical to a serial run of the same seed).
    let set_counts = vec![1usize, 2, 4, 8, 16];
    let results: Vec<(Point, usize, u64, u64)> =
        TrialRunner::new(909).run_over(set_counts, |trial, k| {
            let mut setup = AttackSetup::prepare(trial.seed);
            let pairs = setup.aligned_pairs(k);
            let rep = transmit(
                &mut setup.sys,
                setup.trojan,
                setup.spy,
                &pairs[..k],
                &payload,
                &params,
                setup.thresholds,
            )
            .expect("transmission");
            (
                Point {
                    sets: k,
                    bandwidth_mb_s: rep.bandwidth_bytes_per_sec / 1e6,
                    error_rate_pct: rep.error_rate * 100.0,
                    slot_latency_p50: rep.slot_latency_p50,
                    slot_latency_p95: rep.slot_latency_p95,
                    slot_latency_p99: rep.slot_latency_p99,
                },
                rep.bit_errors,
                report::fnv1a_bits(&rep.received),
                rep.duration_cycles,
            )
        });

    // Bit-compatibility gate: the pipeline wrappers must reproduce the
    // PR 3 channel exactly (payload bits, error counts, end clock).
    for ((point, errors, hash, dur), (gk, gerrors, ghash, gdur)) in results.iter().zip(&GOLDEN) {
        assert_eq!(point.sets, *gk);
        assert_eq!(
            (*errors, *hash, *dur),
            (*gerrors, *ghash, *gdur),
            "decoded stream diverged from the PR 3 golden at {gk} sets"
        );
    }

    let points: Vec<Point> = results.into_iter().map(|(p, ..)| p).collect();
    println!(
        "\n{:>6} | {:>16} | {:>12} | {:>22}",
        "sets", "bandwidth (MB/s)", "error (%)", "slot lat p50/p95/p99"
    );
    println!("-------+------------------+--------------+-----------------------");
    for p in &points {
        println!(
            "{:>6} | {:>16.3} | {:>12.2} | {:>22}",
            p.sets,
            p.bandwidth_mb_s,
            p.error_rate_pct,
            format!(
                "{}/{}/{}",
                p.slot_latency_p50, p.slot_latency_p95, p.slot_latency_p99
            )
        );
    }

    let bw_monotone = points
        .windows(2)
        .all(|w| w[1].bandwidth_mb_s > w[0].bandwidth_mb_s);
    let err_1 = points[0].error_rate_pct;
    let err_16 = points.last().unwrap().error_rate_pct;
    println!("\nshape check: bandwidth monotone in sets = {bw_monotone}");
    println!("shape check: error grows from {err_1:.2}% (1 set) to {err_16:.2}% (16 sets)");
    println!("(decoded payloads fingerprint-checked against the PR 3 golden per point)");
    report::write_json("fig09_bandwidth_error", &points);
}
