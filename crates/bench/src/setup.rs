//! Shared experiment scaffolding: boots a DGX-1, runs the offline
//! reverse-engineering pipeline, and hands out aligned eviction sets.
//!
//! The offline phase here is the **production path**: group-testing page
//! classification ([`gpubox_attacks::classify_pages_fast`]) and an
//! [`OfflineCache`] consulted by every default `prepare*` entry point, so
//! sweeps that boot identical configurations stop re-deriving identical
//! artifacts. Both the derive and the reuse path end by collapsing the
//! system to a canonical phase boundary
//! ([`MultiGpuSystem::canonicalize_phase`]), which makes a cached prepare
//! bit-identical to an uncached one for everything downstream — asserted
//! by `ext_fabric_defense` at its L2 baseline sweep point.

use gpubox_attacks::timing_re::measure_timing;
use gpubox_attacks::{
    align_classes, classify_pages_fast, offline_fingerprint, verify_classes_against_oracle,
    AlignmentConfig, CacheOutcome, Locality, OfflineArtifacts, OfflineCache, PageClasses,
    ScanConfig, SetPair, Thresholds,
};
use gpubox_sim::{
    FabricConfig, GpuId, MultiGpuSystem, ProcessCtx, ProcessId, QosConfig, SystemConfig,
};

/// The standard experiment scale: attacker buffers of this many bytes on
/// the target GPU (256 pages of 64 KiB → ~64 pages per alignment class).
pub const ATTACK_BUFFER_BYTES: u64 = 16 * 1024 * 1024;

/// Phase tag for [`MultiGpuSystem::canonicalize_phase`] at the end of the
/// offline phase (arbitrary, fixed: part of the repo's determinism
/// contract).
const OFFLINE_PHASE_TAG: u64 = 0x0FF1_14E5_E55A_0001;

/// A fully prepared cross-GPU attack: trojan on GPU0, spy on GPU1, both
/// with classified page buffers on GPU0 and derived thresholds.
#[derive(Debug)]
pub struct AttackSetup {
    /// The simulated box.
    pub sys: MultiGpuSystem,
    /// Trojan process (on GPU0, the target).
    pub trojan: ProcessId,
    /// Spy process (on GPU1).
    pub spy: ProcessId,
    /// Trojan-side page classes over its GPU0 buffer.
    pub trojan_classes: PageClasses,
    /// Spy-side page classes over its GPU0 buffer.
    pub spy_classes: PageClasses,
    /// Derived timing thresholds.
    pub thresholds: Thresholds,
    /// Whether the page classes came from the offline cache (true) or
    /// were derived by discovery this boot (false).
    pub offline_cached: bool,
}

impl AttackSetup {
    /// Runs the full offline phase on a fresh DGX-1 (seeded), trojan on
    /// GPU0 and spy on GPU1.
    ///
    /// # Panics
    ///
    /// Panics on simulator errors — experiment binaries treat those as
    /// fatal misconfiguration.
    pub fn prepare(seed: u64) -> Self {
        Self::prepare_between(
            SystemConfig::dgx1().with_seed(seed),
            GpuId::new(0),
            GpuId::new(1),
        )
    }

    /// The **fabric-enabled** prepare path: a DGX-1 with the timed
    /// per-link interconnect on ([`FabricConfig::nvlink_v1`]) and
    /// indirect peer routing allowed, so multi-hop GPU pairs work and
    /// remote traffic pays real per-link occupancy. This is the
    /// one-config base on which both channel families — Prime+Probe
    /// over shared L2 sets and NVLink-link congestion — can be staged
    /// and compared head-to-head (`ext_two_hop_channel`).
    ///
    /// The offline reverse-engineering phase runs with the fabric
    /// already enabled, so the derived thresholds absorb the link
    /// serialisation the same way a real attacker's calibration would.
    ///
    /// # Panics
    ///
    /// Panics on simulator errors.
    pub fn prepare_fabric(seed: u64, trojan_gpu: GpuId, spy_gpu: GpuId) -> Self {
        Self::prepare_fabric_qos(seed, trojan_gpu, spy_gpu, QosConfig::off())
    }

    /// As [`AttackSetup::prepare_fabric`] with a fabric QoS / defence
    /// configuration active **from boot**: the whole offline phase —
    /// timing reverse engineering, eviction-set discovery, alignment —
    /// runs under the defence, so the derived thresholds absorb
    /// whatever constant latency shifts the defence introduces. This is
    /// the *adaptive attacker* of `ext_fabric_defense`: a defence only
    /// counts as effective if it survives an attacker that recalibrates
    /// against it.
    ///
    /// # Panics
    ///
    /// Panics on simulator errors — including the offline phase
    /// *collapsing under the defence* (timing clusters no longer
    /// separable, too few aligned pairs), which the defence experiment
    /// treats as the strongest possible outcome.
    pub fn prepare_fabric_qos(seed: u64, trojan_gpu: GpuId, spy_gpu: GpuId, qos: QosConfig) -> Self {
        let mut cfg = SystemConfig::dgx1()
            .with_seed(seed)
            .with_fabric(FabricConfig::nvlink_v1().with_qos(qos));
        cfg.allow_indirect_peer = true;
        Self::prepare_between(cfg, trojan_gpu, spy_gpu)
    }

    /// As [`AttackSetup::prepare`], for an arbitrary configuration and
    /// GPU pair (the trojan's GPU is the attack target whose L2 carries
    /// the channel). Consults the process-wide [`OfflineCache`].
    ///
    /// # Panics
    ///
    /// Panics on simulator errors.
    pub fn prepare_between(cfg: SystemConfig, trojan_gpu: GpuId, spy_gpu: GpuId) -> Self {
        Self::prepare_with_cache(cfg, trojan_gpu, spy_gpu, Some(OfflineCache::global()))
    }

    /// As [`AttackSetup::prepare_between`] with explicit control over the
    /// offline cache: `Some(cache)` memoises/reuses artifacts there,
    /// `None` always derives (benchmarks measuring discovery cost, and
    /// equivalence tests, need a guaranteed derivation).
    ///
    /// Both paths run the cheap timing reverse engineering live (its
    /// ~200 accesses also keep the RNG stream and frame pool identical
    /// between hit and miss runs), allocate both attack buffers, and end
    /// with [`MultiGpuSystem::canonicalize_phase`] — so a cache hit is
    /// bit-identical to a derivation for everything that follows.
    ///
    /// # Panics
    ///
    /// Panics on simulator errors, and on a cached entry failing its
    /// first-reuse oracle verification.
    pub fn prepare_with_cache(
        cfg: SystemConfig,
        trojan_gpu: GpuId,
        spy_gpu: GpuId,
        cache: Option<&OfflineCache>,
    ) -> Self {
        let mut sys = MultiGpuSystem::new(cfg);
        let timing =
            measure_timing(&mut sys, trojan_gpu, spy_gpu, 48).expect("timing reverse engineering");
        let thresholds = timing.thresholds;

        let trojan = sys.create_process(trojan_gpu);
        let spy = sys.create_process(spy_gpu);
        sys.enable_peer_access(spy, trojan_gpu)
            .expect("peer access");

        let page = sys.config().page_size;
        let line = sys.config().cache.line_size;
        let ways = sys.config().cache.ways as usize;
        let scan = ScanConfig::classify_default();

        // Both buffers are allocated before any (potentially skipped)
        // discovery access: allocation draws placement RNG and consumes
        // frames, so it must happen identically on the hit and miss
        // paths for the post-offline state to be canonical.
        let trojan_buf = sys
            .malloc_on(trojan, trojan_gpu, ATTACK_BUFFER_BYTES)
            .expect("trojan buffer");
        let spy_buf = sys
            .malloc_on(spy, trojan_gpu, ATTACK_BUFFER_BYTES)
            .expect("spy buffer");

        let fp = offline_fingerprint(
            sys.config(),
            &[
                1, // role: trojan/spy attack pair
                trojan_gpu.index() as u64,
                spy_gpu.index() as u64,
                ATTACK_BUFFER_BYTES,
                scan.skip as u64,
                u64::from(scan.votes),
            ],
        );
        let num_pages = ATTACK_BUFFER_BYTES / page;
        let outcome = match cache {
            Some(c) => c.lookup(fp),
            None => CacheOutcome::Miss,
        };
        let (trojan_classes, spy_classes, offline_cached) = match outcome {
            CacheOutcome::Hit(art) => (art.classes[0].clone(), art.classes[1].clone(), true),
            CacheOutcome::FirstReuse(art) => {
                assert_eq!(
                    art.thresholds, thresholds,
                    "cached thresholds diverge from a fresh derivation"
                );
                assert_eq!(art.classes[0].base, trojan_buf, "trojan buffer moved");
                assert_eq!(art.classes[1].base, spy_buf, "spy buffer moved");
                verify_classes_against_oracle(&sys, trojan, &art.classes[0], num_pages)
                    .expect("cached trojan classes fail oracle verification");
                verify_classes_against_oracle(&sys, spy, &art.classes[1], num_pages)
                    .expect("cached spy classes fail oracle verification");
                (art.classes[0].clone(), art.classes[1].clone(), true)
            }
            CacheOutcome::Miss => {
                let trojan_classes = {
                    let mut ctx = ProcessCtx::new(&mut sys, trojan, 0);
                    classify_pages_fast(
                        &mut ctx,
                        trojan_buf,
                        ATTACK_BUFFER_BYTES,
                        page,
                        line,
                        ways,
                        &thresholds,
                        Locality::Local,
                        &scan,
                    )
                    .expect("trojan page classification")
                };
                let spy_classes = {
                    let mut ctx = ProcessCtx::new(&mut sys, spy, 0);
                    classify_pages_fast(
                        &mut ctx,
                        spy_buf,
                        ATTACK_BUFFER_BYTES,
                        page,
                        line,
                        ways,
                        &thresholds,
                        Locality::Remote,
                        &scan,
                    )
                    .expect("spy page classification")
                };
                if let Some(c) = cache {
                    c.insert(
                        fp,
                        OfflineArtifacts {
                            thresholds,
                            classes: vec![trojan_classes.clone(), spy_classes.clone()],
                        },
                    );
                }
                (trojan_classes, spy_classes, false)
            }
        };

        sys.canonicalize_phase(OFFLINE_PHASE_TAG);
        AttackSetup {
            sys,
            trojan,
            spy,
            trojan_classes,
            spy_classes,
            thresholds,
            offline_cached,
        }
    }

    /// Runs the Algorithm-2 alignment protocol and returns `count` aligned
    /// set pairs.
    ///
    /// # Panics
    ///
    /// Panics if alignment fails to pair enough classes.
    pub fn aligned_pairs(&mut self, count: usize) -> Vec<SetPair> {
        let ways = self.sys.config().cache.ways as usize;
        let matches = align_classes(
            &mut self.sys,
            self.trojan,
            &self.trojan_classes,
            self.spy,
            &self.spy_classes,
            ways,
            &AlignmentConfig::default(),
        )
        .expect("alignment protocol");
        let pairs = gpubox_attacks::paired_sets(
            &self.trojan_classes,
            &self.spy_classes,
            &matches,
            count,
            ways,
        );
        assert!(
            pairs.len() >= count,
            "only {} aligned pairs available",
            pairs.len()
        );
        pairs
            .into_iter()
            .map(|(t, s)| SetPair { trojan: t, spy: s })
            .collect()
    }
}

/// A spy-only setup for side-channel experiments: spy on `spy_gpu`
/// monitoring `monitored` sets of `target_gpu`'s L2.
#[derive(Debug)]
pub struct SideChannelSetup {
    /// The simulated box.
    pub sys: MultiGpuSystem,
    /// Spy process.
    pub spy: ProcessId,
    /// Spy eviction sets (one per monitored physical set).
    pub monitored: Vec<gpubox_attacks::EvictionSet>,
    /// Derived thresholds.
    pub thresholds: Thresholds,
}

impl SideChannelSetup {
    /// Prepares a spy on GPU1 monitoring `sets` cache sets of GPU0,
    /// consulting the process-wide [`OfflineCache`] (the cached classes
    /// are independent of `sets`, so sweeps over the monitored-set count
    /// reuse one derivation).
    ///
    /// # Panics
    ///
    /// Panics on simulator errors, and on a cached entry failing its
    /// first-reuse oracle verification.
    pub fn prepare(seed: u64, sets: usize) -> Self {
        let cfg = SystemConfig::dgx1().with_seed(seed);
        let mut sys = MultiGpuSystem::new(cfg);
        let timing = measure_timing(&mut sys, GpuId::new(1), GpuId::new(0), 48)
            .expect("timing reverse engineering");
        let thresholds = timing.thresholds;
        let spy = sys.create_process(GpuId::new(1));
        sys.enable_peer_access(spy, GpuId::new(0))
            .expect("peer access");
        let page = sys.config().page_size;
        let line = sys.config().cache.line_size;
        let ways = sys.config().cache.ways as usize;
        let scan = ScanConfig::classify_default();
        let buf = sys
            .malloc_on(spy, GpuId::new(0), ATTACK_BUFFER_BYTES)
            .expect("spy buffer");
        let fp = offline_fingerprint(
            sys.config(),
            &[
                2, // role: spy-only side-channel setup
                ATTACK_BUFFER_BYTES,
                scan.skip as u64,
                u64::from(scan.votes),
            ],
        );
        let cache = OfflineCache::global();
        let num_pages = ATTACK_BUFFER_BYTES / page;
        let classes = match cache.lookup(fp) {
            CacheOutcome::Hit(art) => art.classes[0].clone(),
            CacheOutcome::FirstReuse(art) => {
                assert_eq!(
                    art.thresholds, thresholds,
                    "cached thresholds diverge from a fresh derivation"
                );
                assert_eq!(art.classes[0].base, buf, "spy buffer moved");
                verify_classes_against_oracle(&sys, spy, &art.classes[0], num_pages)
                    .expect("cached spy classes fail oracle verification");
                art.classes[0].clone()
            }
            CacheOutcome::Miss => {
                let classes = {
                    let mut ctx = ProcessCtx::new(&mut sys, spy, 0);
                    classify_pages_fast(
                        &mut ctx,
                        buf,
                        ATTACK_BUFFER_BYTES,
                        page,
                        line,
                        ways,
                        &thresholds,
                        Locality::Remote,
                        &scan,
                    )
                    .expect("spy page classification")
                };
                cache.insert(
                    fp,
                    OfflineArtifacts {
                        thresholds,
                        classes: vec![classes.clone()],
                    },
                );
                classes
            }
        };
        sys.canonicalize_phase(OFFLINE_PHASE_TAG);
        let monitored = classes.enumerate_sets(sets, ways);
        assert_eq!(monitored.len(), sets, "buffer too small for {sets} sets");
        SideChannelSetup {
            sys,
            spy,
            monitored,
            thresholds,
        }
    }
}

/// Estimates how long (in cycles) a victim trace will occupy the GPU, so
/// recorders know how long to watch.
pub fn estimate_trace_cycles(trace: &[gpubox_workloads::TraceOp]) -> u64 {
    use gpubox_workloads::TraceOp;
    trace
        .iter()
        .map(|op| match op {
            TraceOp::Load(_) | TraceOp::Store(..) => 360, // mixed hit/miss estimate
            TraceOp::Compute(c) => *c,
        })
        .sum()
}

/// Builds a victim's replay agent plus a watch-duration estimate (with a
/// 30% margin) for the memorygram recorder.
///
/// # Panics
///
/// Panics on allocation failure.
pub fn victim_with_duration(
    sys: &mut MultiGpuSystem,
    pid: ProcessId,
    workload: &dyn gpubox_workloads::Workload,
) -> (gpubox_workloads::TraceAgent, u64) {
    let trace = {
        let mut ctx = ProcessCtx::new(sys, pid, 0);
        workload.build(&mut ctx).expect("victim trace build")
    };
    let estimate = estimate_trace_cycles(&trace) * 13 / 10;
    (gpubox_workloads::TraceAgent::new(pid, trace), estimate)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attack_setup_produces_aligned_pairs() {
        let mut setup = AttackSetup::prepare(101);
        // Every class should have plenty of pages at DGX scale.
        assert!(setup.trojan_classes.classes.len() >= 2);
        let pairs = setup.aligned_pairs(4);
        assert_eq!(pairs.len(), 4);
        for p in &pairs {
            let t = setup
                .sys
                .oracle_set_of(setup.trojan, p.trojan.lines()[0])
                .unwrap();
            let s = setup
                .sys
                .oracle_set_of(setup.spy, p.spy.lines()[0])
                .unwrap();
            assert_eq!(t, s, "pair must share a physical set");
        }
    }

    #[test]
    fn fabric_setup_pairs_multi_hop_gpus() {
        // GPU0 and GPU5 sit in different quads with no direct link: the
        // fabric-enabled path must still align sets across the 2-hop
        // route (and would panic at `enable_peer_access` without
        // `allow_indirect_peer`).
        let mut setup = AttackSetup::prepare_fabric(77, GpuId::new(0), GpuId::new(5));
        assert!(setup.sys.fabric_enabled());
        let pairs = setup.aligned_pairs(2);
        for p in &pairs {
            let t = setup
                .sys
                .oracle_set_of(setup.trojan, p.trojan.lines()[0])
                .unwrap();
            let s = setup.sys.oracle_set_of(setup.spy, p.spy.lines()[0]).unwrap();
            assert_eq!(t, s, "pair must share a physical set");
        }
    }

    #[test]
    fn side_setup_monitors_distinct_sets() {
        let setup = SideChannelSetup::prepare(55, 64);
        let mut seen = std::collections::HashSet::new();
        for es in &setup.monitored {
            let s = setup.sys.oracle_set_of(setup.spy, es.lines()[0]).unwrap();
            assert!(seen.insert(s));
        }
    }
}
