//! Small table/series printing helpers shared by the experiment binaries.

use std::fmt::Display;

/// Prints a boxed experiment header.
pub fn header(title: &str, paper_ref: &str) {
    let line = "=".repeat(72);
    println!("{line}");
    println!("{title}");
    println!("reproduces: {paper_ref}");
    println!("{line}");
}

/// Prints a two-column table.
pub fn table2<A: Display, B: Display>(col_a: &str, col_b: &str, rows: &[(A, B)]) {
    println!("{col_a:>24} | {col_b:>20}");
    println!("{}-+-{}", "-".repeat(24), "-".repeat(20));
    for (a, b) in rows {
        println!("{a:>24} | {b:>20}");
    }
}

/// Prints a three-column table.
pub fn table3<A: Display, B: Display, C: Display>(cols: (&str, &str, &str), rows: &[(A, B, C)]) {
    println!("{:>20} | {:>18} | {:>18}", cols.0, cols.1, cols.2);
    println!(
        "{}-+-{}-+-{}",
        "-".repeat(20),
        "-".repeat(18),
        "-".repeat(18)
    );
    for (a, b, c) in rows {
        println!("{a:>20} | {b:>18} | {c:>18}");
    }
}

/// Prints a four-column table.
pub fn table4<A: Display, B: Display, C: Display, D: Display>(
    cols: (&str, &str, &str, &str),
    rows: &[(A, B, C, D)],
) {
    println!(
        "{:>12} | {:>16} | {:>26} | {:>26}",
        cols.0, cols.1, cols.2, cols.3
    );
    println!(
        "{}-+-{}-+-{}-+-{}",
        "-".repeat(12),
        "-".repeat(16),
        "-".repeat(26),
        "-".repeat(26)
    );
    for (a, b, c, d) in rows {
        println!("{a:>12} | {b:>16} | {c:>26} | {d:>26}");
    }
}

/// FNV-1a fold over a bit stream — the payload fingerprint the figure
/// binaries assert against goldens captured at earlier PR HEADs. One
/// definition so every binary's fingerprints stay comparable.
pub fn fnv1a_bits(bits: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bits {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Renders an ASCII bar of `value` scaled to `max` over `width` chars.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let n = if max > 0.0 {
        ((value / max) * width as f64).round() as usize
    } else {
        0
    };
    "#".repeat(n.min(width))
}

/// Records a non-fatal warning for `bin`: appends one line to
/// `results/warnings/<bin>.txt` (and mirrors it to stderr). `run_all`
/// collects these files into the per-bin `warnings` field of
/// `results/RESULTS.json`, so conditions like a saturated `TraceSink`
/// surface in the machine-readable report instead of silently
/// under-reporting.
pub fn warn(bin: &str, msg: &str) {
    eprintln!("warning[{bin}]: {msg}");
    let dir = std::path::Path::new("results").join("warnings");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    use std::io::Write;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join(format!("{bin}.txt")))
    {
        let _ = writeln!(f, "{msg}");
    }
}

/// Writes a JSON artefact next to the binary outputs (under `results/`).
pub fn write_json<T: serde::Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("\n[artefact] {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialise {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(0.0, 10.0, 10), "");
        assert_eq!(bar(20.0, 10.0, 10).len(), 10);
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}
