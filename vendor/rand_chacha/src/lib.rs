//! Vendored ChaCha-based RNG for the offline build.
//!
//! Implements a genuine ChaCha block function (8 rounds for
//! [`ChaCha8Rng`]), seeded through the workspace's `rand` shim traits.
//! Deterministic per seed; not intended to be bit-compatible with the
//! upstream `rand_chacha` stream.

use rand::{RngCore, SeedableRng};

/// The ChaCha quarter round.
#[inline(always)]
fn quarter(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

macro_rules! chacha_rng {
    ($name:ident, $rounds:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name {
            key: [u32; 8],
            counter: u64,
            buf: [u32; 16],
            idx: usize,
        }

        impl $name {
            fn refill(&mut self) {
                let mut s = [0u32; 16];
                // "expand 32-byte k" constants.
                s[0] = 0x6170_7865;
                s[1] = 0x3320_646e;
                s[2] = 0x7962_2d32;
                s[3] = 0x6b20_6574;
                s[4..12].copy_from_slice(&self.key);
                s[12] = self.counter as u32;
                s[13] = (self.counter >> 32) as u32;
                s[14] = 0;
                s[15] = 0;
                let input = s;
                for _ in 0..($rounds / 2) {
                    quarter(&mut s, 0, 4, 8, 12);
                    quarter(&mut s, 1, 5, 9, 13);
                    quarter(&mut s, 2, 6, 10, 14);
                    quarter(&mut s, 3, 7, 11, 15);
                    quarter(&mut s, 0, 5, 10, 15);
                    quarter(&mut s, 1, 6, 11, 12);
                    quarter(&mut s, 2, 7, 8, 13);
                    quarter(&mut s, 3, 4, 9, 14);
                }
                for (o, i) in s.iter_mut().zip(input.iter()) {
                    *o = o.wrapping_add(*i);
                }
                self.buf = s;
                self.counter = self.counter.wrapping_add(1);
                self.idx = 0;
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.idx >= 16 {
                    self.refill();
                }
                let v = self.buf[self.idx];
                self.idx += 1;
                v
            }

            fn next_u64(&mut self) -> u64 {
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                lo | (hi << 32)
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut key = [0u32; 8];
                for (i, w) in key.iter_mut().enumerate() {
                    *w = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
                }
                let mut rng = $name {
                    key,
                    counter: 0,
                    buf: [0; 16],
                    idx: 16,
                };
                rng.refill();
                rng
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, 8, "ChaCha with 8 rounds.");
chacha_rng!(ChaCha12Rng, 12, "ChaCha with 12 rounds.");
chacha_rng!(ChaCha20Rng, 20, "ChaCha with 20 rounds.");

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let mut c = ChaCha8Rng::seed_from_u64(10);
        let va: Vec<u32> = (0..40).map(|_| a.gen()).collect();
        let vb: Vec<u32> = (0..40).map(|_| b.gen()).collect();
        let vc: Vec<u32> = (0..40).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn spreads_over_range() {
        let mut r = ChaCha8Rng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..400 {
            seen.insert(r.gen_range(0..16u8));
        }
        assert!(seen.len() > 12);
    }
}
