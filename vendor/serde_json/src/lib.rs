//! Vendored JSON front-end for the offline `serde` shim.
//!
//! Renders [`serde::Value`] trees to JSON text and parses JSON text back,
//! exposing the familiar `to_string` / `to_string_pretty` / `from_str`
//! entry points. Numbers round-trip exactly: integers stay integers and
//! floats use Rust's shortest round-trip formatting.

pub use serde::{Error, Value};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for the shim's value model; kept fallible for API parity.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, indented JSON.
///
/// # Errors
///
/// Infallible for the shim's value model; kept fallible for API parity.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { b: s.as_bytes(), i: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.i)));
    }
    T::from_value(&v)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on shape or type mismatch.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    T::from_value(v)
}

fn render(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    let (nl, pad, pad_in) = match indent {
        Some(w) => (
            "\n",
            " ".repeat(w * level),
            " ".repeat(w * (level + 1)),
        ),
        None => ("", String::new(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip float format.
                let _ = write!(out, "{f:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                render(item, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, out, indent, level + 1);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.b
            .get(self.i)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of JSON"))
    }

    fn eat(&mut self, c: u8) -> Result<(), Error> {
        if self.peek()? == c {
            self.i += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                c as char, self.i
            )))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.i)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.lit("null", Value::Null),
            b't' => self.lit("true", Value::Bool(true)),
            b'f' => self.lit("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.eat(b'[')?;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.i += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.i += 1,
                        b']' => {
                            self.i += 1;
                            return Ok(Value::Array(items));
                        }
                        c => {
                            return Err(Error::msg(format!(
                                "expected `,` or `]`, got `{}`",
                                c as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.eat(b'{')?;
                let mut pairs = Vec::new();
                if self.peek()? == b'}' {
                    self.i += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.eat(b':')?;
                    pairs.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.i += 1,
                        b'}' => {
                            self.i += 1;
                            return Ok(Value::Object(pairs));
                        }
                        c => {
                            return Err(Error::msg(format!(
                                "expected `,` or `}}`, got `{}`",
                                c as char
                            )))
                        }
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self
                .b
                .get(self.i)
                .ok_or_else(|| Error::msg("unterminated string"))?;
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .b
                        .get(self.i)
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            self.i += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: find the full char in the source.
                    let start = self.i - 1;
                    let s = std::str::from_utf8(&self.b[start..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.i = start + ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.i;
        while self.i < self.b.len()
            && matches!(self.b[self.i], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| Error::msg("invalid number"))?;
        if text.is_empty() {
            return Err(Error::msg(format!("expected value at byte {start}")));
        }
        let is_float = text.contains(['.', 'e', 'E']);
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(18_446_744_073_709_551_615)),
            ("b".into(), Value::I64(-42)),
            ("c".into(), Value::F64(1.48e9)),
            ("d".into(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("e".into(), Value::Str("x \"quoted\"\n".into())),
        ]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn typed_round_trip() {
        let xs: Vec<f64> = vec![0.1, -3.25, 9.0];
        let s = to_string(&xs).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&s).unwrap(), xs);
        let pairs: Vec<(u32, u32)> = vec![(1, 2), (3, 4)];
        let s = to_string(&pairs).unwrap();
        assert_eq!(from_str::<Vec<(u32, u32)>>(&s).unwrap(), pairs);
    }
}
