//! Vendored, offline subset of `criterion`.
//!
//! Implements `Criterion::bench_function`, `Bencher::iter` /
//! `iter_batched`, `black_box` and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple calibrated loop:
//! each benchmark is warmed up, then timed over `sample_size` samples and
//! reported as ns/iter (median, min, max). Passing `--test` (as CI smoke
//! runs do) executes every benchmark exactly once without timing.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The shim re-runs setup for
/// every iteration regardless; the variant only tunes batch sizing
/// upstream, which we don't need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Benchmark identifier (API parity; the shim renders it as a string).
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id like `group/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    /// Applies command-line arguments (`--test` for smoke mode, a bare
    /// string as a name filter; harness flags are ignored).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" | "--quick" => self.test_mode = true,
                "--bench" | "--profile-time" => {
                    // --profile-time eats a value.
                    if a == "--profile-time" {
                        let _ = args.next();
                    }
                }
                s if s.starts_with('-') => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        if self.test_mode {
            println!("test {name} ... ok (smoke)");
        } else {
            b.report(name);
        }
        self
    }
}

/// Collects timing samples for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    test_mode: bool,
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Benchmarks a closure.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Calibrate: how many iterations fit in ~2 ms?
        let mut iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let el = t.elapsed();
            if el > Duration::from_millis(2) || iters > (1 << 24) {
                break;
            }
            iters *= 4;
        }
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let el = t.elapsed();
            self.samples.push(el.as_nanos() as f64 / iters as f64);
        }
    }

    /// Benchmarks a closure taking a per-iteration input built by `setup`
    /// (setup time is excluded from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            return;
        }
        // Calibrate iterations per sample against routine cost only.
        let mut iters = 1u64;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t = Instant::now();
            for i in inputs {
                black_box(routine(i));
            }
            let el = t.elapsed();
            if el > Duration::from_millis(2) || iters > (1 << 16) {
                break;
            }
            iters *= 4;
        }
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t = Instant::now();
            for i in inputs {
                black_box(routine(i));
            }
            let el = t.elapsed();
            self.samples.push(el.as_nanos() as f64 / iters as f64);
        }
    }

    fn report(&mut self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples[self.samples.len() / 2];
        let min = self.samples[0];
        let max = *self.samples.last().unwrap();
        println!(
            "{name:<40} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg.configure_from_args();
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
