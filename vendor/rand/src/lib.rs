//! Vendored, offline subset of the `rand` crate API.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace ships a minimal implementation of the `rand` surface
//! it actually uses: [`RngCore`], [`Rng`] (with `gen`, `gen_range`,
//! `gen_bool`), [`SeedableRng`], [`rngs::SmallRng`] and
//! [`seq::SliceRandom`]. Algorithms are deterministic and of decent
//! statistical quality (xoshiro256++ for `SmallRng`), but this crate makes
//! no attempt at value-compatibility with upstream `rand` — only API
//! compatibility for the subset the workspace needs.

use core::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Generates a value of a type with a standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_in(self)
    }

    /// Bernoulli sample with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the "standard" distribution (uniform over the
/// domain; floats uniform in `[0, 1)`).
pub trait Standard {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty: $m:ident),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}
impl_standard_int!(u8: next_u32, u16: next_u32, u32: next_u32, u64: next_u64,
    usize: next_u64, i8: next_u32, i16: next_u32, i32: next_u32, i64: next_u64, isize: next_u64);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_in<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Widening multiply rejection-free mapping; bias is
                // negligible for the span sizes used here.
                let v = (rng.next_u64() as u128 * span) >> 64;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                let v = (rng.next_u64() as u128 * span) >> 64;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// RNGs reproducibly constructible from seeds.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the RNG from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One SplitMix64 step (used for seed expansion and stream derivation).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                *w = u64::from_le_bytes(seed[i * 8..i * 8 + 8].try_into().unwrap());
            }
            // Avoid the all-zero state, which is a fixed point.
            if s == [0; 4] {
                let mut sm = 0xDEAD_BEEF_u64;
                for w in &mut s {
                    *w = splitmix64(&mut sm);
                }
            }
            SmallRng { s }
        }
    }
}

/// Sequence-related helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, SampleRange};

    /// Extension trait over slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly chosen element, `None` when empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_in(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_in(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(va[0], c.gen::<u64>());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u8 = r.gen_range(0..16);
            assert!(v < 16);
            let f: f64 = r.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
            let i: i64 = r.gen_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
    }
}
