//! Vendored, offline stand-in for `serde`.
//!
//! Offers the same import surface the workspace uses (`Serialize` /
//! `Deserialize` traits plus derive macros of the same names) but with a
//! much simpler design: values serialize into a JSON-like [`Value`] tree,
//! and deserialize back out of one. `serde_json` (also vendored) renders
//! and parses that tree. Not wire- or API-compatible with real serde
//! beyond this subset.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    /// Builds an error with a message.
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl Value {
    /// Looks up a field of an object.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error::msg(format!("missing field `{name}`"))),
            other => Err(Error::msg(format!(
                "expected object with field `{name}`, got {other:?}"
            ))),
        }
    }

    /// Interprets the value as an array of exactly `n` elements.
    pub fn tuple(&self, n: usize) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) if items.len() == n => Ok(items),
            other => Err(Error::msg(format!("expected {n}-tuple, got {other:?}"))),
        }
    }

    /// The value as `u64`, if numeric and exactly representable.
    pub fn as_u64(&self) -> Result<u64, Error> {
        match *self {
            Value::U64(v) => Ok(v),
            Value::I64(v) if v >= 0 => Ok(v as u64),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Ok(v as u64),
            ref other => Err(Error::msg(format!("expected unsigned integer, got {other:?}"))),
        }
    }

    /// The value as `i64`, if numeric and exactly representable.
    pub fn as_i64(&self) -> Result<i64, Error> {
        match *self {
            Value::I64(v) => Ok(v),
            Value::U64(v) if v <= i64::MAX as u64 => Ok(v as i64),
            Value::F64(v) if v.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&v) => {
                Ok(v as i64)
            }
            ref other => Err(Error::msg(format!("expected integer, got {other:?}"))),
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Result<f64, Error> {
        match *self {
            Value::F64(v) => Ok(v),
            Value::U64(v) => Ok(v as f64),
            Value::I64(v) => Ok(v as f64),
            ref other => Err(Error::msg(format!("expected number, got {other:?}"))),
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Result<bool, Error> {
        match *self {
            Value::Bool(b) => Ok(b),
            ref other => Err(Error::msg(format!("expected bool, got {other:?}"))),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, Error> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(Error::msg(format!("expected string, got {other:?}"))),
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(Error::msg(format!("expected array, got {other:?}"))),
        }
    }
}

/// Types renderable into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parses `Self` out of a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] on shape or type mismatch.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64()?;
                <$t>::try_from(raw).map_err(|_| Error::msg(format!(
                    "{} out of range for {}", raw, stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::I64(v) } else { Value::U64(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64()?;
                <$t>::try_from(raw).map_err(|_| Error::msg(format!(
                    "{} out of range for {}", raw, stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
    }
}
impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64()? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.as_str()?.to_string())
    }
}
impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()?.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

macro_rules! impl_tuple {
    ($n:expr; $($t:ident . $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.tuple($n)?;
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    };
}
impl_tuple!(1; A.0);
impl_tuple!(2; A.0, B.1);
impl_tuple!(3; A.0, B.1, C.2);
impl_tuple!(4; A.0, B.1, C.2, D.3);

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(Error::msg(format!("expected object, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
