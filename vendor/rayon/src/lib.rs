//! Vendored, offline subset of `rayon` built on `std::thread::scope`.
//!
//! Supplies `join`, `scope`, `current_num_threads` and a minimal parallel
//! iterator surface (`par_iter` over slices, `into_par_iter` over `Vec`
//! and `Range<usize>`, with `map` + `collect`/`for_each`). Work is split
//! into one contiguous chunk per worker thread; results preserve input
//! order, so `collect()` is deterministic regardless of scheduling.

use std::num::NonZeroUsize;

/// Number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(fa: A, fb: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(fb);
        let ra = fa();
        let rb = hb.join().expect("rayon shim: join worker panicked");
        (ra, rb)
    })
}

/// A scope for spawning borrowed parallel work.
#[derive(Debug)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task in the scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Creates a scope in which borrowed tasks can be spawned; returns once
/// all spawned tasks complete.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Parallel iterator traits and adaptors.
pub mod iter {
    use super::current_num_threads;

    /// Executes `f` over `items`, one contiguous chunk per worker, and
    /// returns the results in input order.
    fn par_map_vec<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = current_num_threads().min(n);
        if workers == 1 {
            return items.into_iter().map(f).collect();
        }
        // Split into contiguous chunks, keeping order.
        let chunk = n.div_ceil(workers);
        let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
        let mut items = items;
        while !items.is_empty() {
            let rest = items.split_off(items.len().min(chunk));
            // split_off leaves the head in `items`; push head, continue on rest.
            chunks.push(std::mem::replace(&mut items, rest));
        }
        let mut out: Vec<Vec<U>> = Vec::with_capacity(chunks.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .into_iter()
                .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<U>>()))
                .collect();
            for h in handles {
                out.push(h.join().expect("rayon shim: map worker panicked"));
            }
        });
        out.into_iter().flatten().collect()
    }

    /// A parallel iterator: a materialized work list plus an execution plan.
    pub trait ParallelIterator: Sized {
        /// The element type produced.
        type Item: Send;

        /// Runs the pipeline, yielding all items in order.
        fn run(self) -> Vec<Self::Item>;

        /// Maps every item through `f` in parallel.
        fn map<U, F>(self, f: F) -> MapIter<Self, F>
        where
            U: Send,
            F: Fn(Self::Item) -> U + Sync,
        {
            MapIter { base: self, f }
        }

        /// Collects the results. `Vec<Item>` is the supported target.
        fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
            C::from_ordered_vec(self.run())
        }

        /// Runs `f` for every item (parallel, order of side effects
        /// unspecified).
        fn for_each<F>(self, f: F)
        where
            F: Fn(Self::Item) + Sync,
        {
            let _ = self.map(&f).run();
        }

        /// Sums the items.
        fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
            self.run().into_iter().sum()
        }
    }

    /// Conversion into a parallel iterator, by value.
    pub trait IntoParallelIterator {
        /// Element type.
        type Item: Send;
        /// Iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Converts `self`.
        fn into_par_iter(self) -> Self::Iter;
    }

    /// Conversion into a borrowing parallel iterator.
    pub trait IntoParallelRefIterator<'a> {
        /// Element type (a reference).
        type Item: Send + 'a;
        /// Iterator type.
        type Iter: ParallelIterator<Item = Self::Item>;
        /// Borrows `self` as a parallel iterator.
        fn par_iter(&'a self) -> Self::Iter;
    }

    /// Collection targets for [`ParallelIterator::collect`].
    pub trait FromParallelIterator<T> {
        /// Builds the collection from in-order results.
        fn from_ordered_vec(v: Vec<T>) -> Self;
    }

    impl<T> FromParallelIterator<T> for Vec<T> {
        fn from_ordered_vec(v: Vec<T>) -> Self {
            v
        }
    }

    impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
        fn from_ordered_vec(v: Vec<Result<T, E>>) -> Self {
            v.into_iter().collect()
        }
    }

    /// Base parallel iterator over owned items.
    #[derive(Debug)]
    pub struct VecIter<T> {
        items: Vec<T>,
    }

    impl<T: Send> ParallelIterator for VecIter<T> {
        type Item = T;
        fn run(self) -> Vec<T> {
            self.items
        }
    }

    /// See [`ParallelIterator::map`].
    #[derive(Debug)]
    pub struct MapIter<B, F> {
        base: B,
        f: F,
    }

    impl<B, U, F> ParallelIterator for MapIter<B, F>
    where
        B: ParallelIterator,
        U: Send,
        F: Fn(B::Item) -> U + Sync,
    {
        type Item = U;
        fn run(self) -> Vec<U> {
            par_map_vec(self.base.run(), &self.f)
        }
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = VecIter<T>;
        fn into_par_iter(self) -> VecIter<T> {
            VecIter { items: self }
        }
    }

    impl IntoParallelIterator for std::ops::Range<usize> {
        type Item = usize;
        type Iter = VecIter<usize>;
        fn into_par_iter(self) -> VecIter<usize> {
            VecIter {
                items: self.collect(),
            }
        }
    }

    impl IntoParallelIterator for std::ops::Range<u64> {
        type Item = u64;
        type Iter = VecIter<u64>;
        fn into_par_iter(self) -> VecIter<u64> {
            VecIter {
                items: self.collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
        type Item = &'a T;
        type Iter = VecIter<&'a T>;
        fn par_iter(&'a self) -> VecIter<&'a T> {
            VecIter {
                items: self.iter().collect(),
            }
        }
    }

    impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
        type Item = &'a T;
        type Iter = VecIter<&'a T>;
        fn par_iter(&'a self) -> VecIter<&'a T> {
            VecIter {
                items: self.iter().collect(),
            }
        }
    }
}

/// Common imports, mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000u64).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000u64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn scope_spawns_and_waits() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let n = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    n.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(n.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn par_iter_borrows() {
        let data = vec![1u32, 2, 3, 4];
        let doubled: Vec<u32> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
    }
}
