//! Derive macros for the vendored `serde` shim.
//!
//! Hand-rolled token parsing (no `syn`/`quote` available offline).
//! Supports non-generic structs (named, tuple, unit) and enums whose
//! variants are unit, tuple or struct-like. Serialization follows serde's
//! conventions: named structs → objects, newtype structs → the inner
//! value, tuple structs → arrays, unit enum variants → strings, data
//! variants → externally tagged single-key objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Consumes leading attributes (`#[...]`) from the token cursor.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match (&tokens[i], &tokens[i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                i += 2;
            }
            _ => break,
        }
    }
    i
}

/// Consumes a visibility modifier (`pub`, `pub(...)`).
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
        i += 1;
        if i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Splits a token list on commas that are not nested in angle brackets.
/// Returns the number of non-empty segments and, when `named`, the first
/// identifier of each segment (the field name, after attrs/vis).
fn parse_field_list(inner: &[TokenTree], named: bool) -> (usize, Vec<String>) {
    let mut names = Vec::new();
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut seg: Vec<TokenTree> = Vec::new();
    let flush = |seg: &mut Vec<TokenTree>, names: &mut Vec<String>, count: &mut usize| {
        if seg.is_empty() {
            return;
        }
        *count += 1;
        if named {
            let toks: Vec<TokenTree> = seg.clone();
            let mut j = skip_attrs(&toks, 0);
            j = skip_vis(&toks, j);
            match toks.get(j) {
                Some(TokenTree::Ident(id)) => names.push(id.to_string()),
                other => panic!("serde_derive: expected field name, got {other:?}"),
            }
        }
        seg.clear();
    };
    for t in inner {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                seg.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                seg.push(t.clone());
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                flush(&mut seg, &mut names, &mut count);
            }
            _ => seg.push(t.clone()),
        }
    }
    flush(&mut seg, &mut names, &mut count);
    (count, names)
}

fn parse_fields_group(g: &proc_macro::Group) -> Fields {
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    match g.delimiter() {
        Delimiter::Brace => {
            let (_, names) = parse_field_list(&inner, true);
            Fields::Named(names)
        }
        Delimiter::Parenthesis => {
            let (count, _) = parse_field_list(&inner, false);
            Fields::Tuple(count)
        }
        other => panic!("serde_derive: unexpected field delimiter {other:?}"),
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim does not support generic type `{name}`");
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) => Item::Struct {
                name,
                fields: parse_fields_group(g),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct {
                name,
                fields: Fields::Unit,
            },
            other => panic!("serde_derive: malformed struct body: {other:?}"),
        },
        "enum" => {
            let g = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("serde_derive: malformed enum body: {other:?}"),
            };
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            let mut variants = Vec::new();
            let mut j = 0usize;
            while j < inner.len() {
                j = skip_attrs(&inner, j);
                if j >= inner.len() {
                    break;
                }
                let vname = match &inner[j] {
                    TokenTree::Ident(id) => id.to_string(),
                    other => panic!("serde_derive: expected variant name, got {other:?}"),
                };
                j += 1;
                let fields = match inner.get(j) {
                    Some(TokenTree::Group(vg)) => {
                        let f = parse_fields_group(vg);
                        j += 1;
                        f
                    }
                    _ => Fields::Unit,
                };
                // Skip an optional discriminant and the trailing comma.
                while j < inner.len()
                    && !matches!(&inner[j], TokenTree::Punct(p) if p.as_char() == ',')
                {
                    j += 1;
                }
                j += 1; // past the comma
                variants.push(Variant {
                    name: vname,
                    fields,
                });
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                }
                Fields::Named(names) => {
                    let pairs: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from(\"{f}\"), \
                                 ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vn}\")),"
                        ),
                        Fields::Tuple(n) => {
                            let binders: Vec<String> =
                                (0..*n).map(|i| format!("f{i}")).collect();
                            let inner = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let elems: Vec<String> = binders
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                            };
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![\
                                 (::std::string::String::from(\"{vn}\"), {inner})]),",
                                binders.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let binders = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binders} }} => ::serde::Value::Object(vec![\
                                 (::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(vec![{}]))]),",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {} }}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                        .collect();
                    format!(
                        "let items = v.tuple({n})?;\n\
                         ::std::result::Result::Ok({name}({}))",
                        elems.join(", ")
                    )
                }
                Fields::Named(names) => {
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!("{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)?")
                        })
                        .collect();
                    format!(
                        "::std::result::Result::Ok({name} {{ {} }})",
                        inits.join(", ")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter(|v| !matches!(v.fields, Fields::Unit))
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        Fields::Tuple(1) => format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(payload)?)),"
                        ),
                        Fields::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&items[{i}])?")
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let items = payload.tuple({n})?; \
                                 ::std::result::Result::Ok({name}::{vn}({})) }},",
                                elems.join(", ")
                            )
                        }
                        Fields::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         payload.field(\"{f}\")?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            )
                        }
                        Fields::Unit => unreachable!(),
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> \
                         ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {units}\n\
                                 other => ::std::result::Result::Err(::serde::Error::msg(\
                                     format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                                 let (tag, payload) = (&pairs[0].0, &pairs[0].1);\n\
                                 #[allow(unused_variables)]\n\
                                 match tag.as_str() {{\n\
                                     {data}\n\
                                     other => ::std::result::Result::Err(::serde::Error::msg(\
                                         format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                                 }}\n\
                             }},\n\
                             other => ::std::result::Result::Err(::serde::Error::msg(\
                                 format!(\"cannot deserialize {name} from {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}",
                units = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    }
}

/// Derives the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derives the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}
