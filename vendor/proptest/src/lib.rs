//! Vendored, offline subset of `proptest`.
//!
//! Provides the `proptest!` / `prop_assert*!` macros, a [`Strategy`] trait
//! with `prop_map` / `prop_flat_map`, range and collection strategies, and
//! [`ProptestConfig`]. Cases are generated from a deterministic per-case
//! RNG; there is no shrinking — a failing case reports its inputs via the
//! assertion message instead.

use rand::rngs::SmallRng;
use rand::{Rng, SampleRange, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The RNG driving test-case generation.
pub type TestRng = SmallRng;

/// Creates the deterministic RNG for one test case.
pub fn test_rng(case: u32) -> TestRng {
    // Honor PROPTEST_SEED for reproducing specific runs.
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0x5EED_CAFE_F00D_u64);
    TestRng::seed_from_u64(base ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A heap-allocated, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;
    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for primitive types.
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen::<$t>()
            }
        }
        impl Arbitrary for $t {
            type Strategy = Any<$t>;
            fn arbitrary() -> Any<$t> { Any(PhantomData) }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

/// The canonical strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Bounds for generated collection sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}
impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange { lo: r.start, hi: r.end }
    }
}
impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod strategies {
    pub use super::*;

    /// Collection strategies.
    pub mod collection {
        use super::*;

        /// Strategy producing `Vec`s of elements from `elem`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.size.lo + 1 >= self.size.hi {
                    self.size.lo
                } else {
                    (self.size.lo..self.size.hi).sample_in(rng)
                };
                (0..len).map(|_| self.elem.sample(rng)).collect()
            }
        }

        /// `Vec` strategy with a size range.
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { elem, size: size.into() }
        }
    }
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategies as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Skips the current case when its precondition does not hold.
///
/// The shim counts a skipped case as passed (no retry with new inputs).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), l));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Declares property tests. Mirrors the upstream macro's common form:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(any::<u8>(), 0..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut __proptest_rng = $crate::test_rng(case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)+
                let result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = result {
                    panic!("proptest case {case} of {}: {msg}", stringify!($name));
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    (($cfg:expr);) => {};
}
