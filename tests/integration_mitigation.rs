//! Integration tests for the Sec. VI mitigation and the defensive
//! observations of Sec. VII.

use gpubox_attacks::mitigation::{typical_noise_kernel, ExclusiveOccupancy};
use gpubox_sim::{GpuId, KernelLaunch, MultiGpuSystem, SystemConfig};

#[test]
fn mitigation_blocks_noise_on_every_gpu() {
    let mut sys = MultiGpuSystem::new(SystemConfig::dgx1());
    for g in 0..8u8 {
        let gpu = GpuId::new(g);
        let occ = ExclusiveOccupancy::establish(&mut sys, gpu, 32).unwrap();
        assert!(
            occ.excludes(&sys, &typical_noise_kernel()),
            "GPU{g} not saturated"
        );
        occ.release(&mut sys);
        assert!(
            sys.can_launch(gpu, &typical_noise_kernel()),
            "GPU{g} not restored"
        );
    }
}

#[test]
fn mitigation_does_not_interfere_across_gpus() {
    // Saturating GPU0 leaves GPU1 fully available.
    let mut sys = MultiGpuSystem::new(SystemConfig::dgx1());
    let occ = ExclusiveOccupancy::establish(&mut sys, GpuId::new(0), 32).unwrap();
    assert!(sys.can_launch(GpuId::new(1), &typical_noise_kernel()));
    occ.release(&mut sys);
}

#[test]
fn detection_signal_nvlink_traffic_of_remote_attacks() {
    // Sec. VII: cross-GPU attacks are detectable by monitoring NVLink
    // traffic — the simulator's counters expose exactly that signal.
    let mut sys = MultiGpuSystem::new(SystemConfig::dgx1());
    let spy = sys.create_process(GpuId::new(1));
    sys.enable_peer_access(spy, GpuId::new(0)).unwrap();
    let buf = sys.malloc_on(spy, GpuId::new(0), 1 << 20).unwrap();
    let before = sys.stats().gpu(GpuId::new(1)).nvlink_bytes;
    for i in 0..1000u64 {
        sys.access(
            spy,
            sys.default_agent(spy),
            buf.offset((i % 512) * 128),
            i * 700,
            None,
        )
        .unwrap();
    }
    let after = sys.stats().gpu(GpuId::new(1)).nvlink_bytes;
    assert_eq!(
        after - before,
        1000 * 128,
        "probe traffic is visible on the link"
    );
}

#[test]
fn leftover_policy_places_partial_kernels_only_when_whole_grid_fits() {
    let mut sys = MultiGpuSystem::new(SystemConfig::dgx1());
    let gpu = GpuId::new(3);
    // 56 SMs x 2 blocks of 32 KiB fit; a third layer does not.
    let full = KernelLaunch {
        blocks: 56,
        threads_per_block: 32,
        shared_mem_per_block: 32 * 1024,
    };
    sys.launch_kernel(gpu, full).unwrap();
    sys.launch_kernel(gpu, full).unwrap();
    assert!(sys.launch_kernel(gpu, full).is_err());
}
