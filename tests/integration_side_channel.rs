//! Side-channel integration: memorygram capture of real workloads and the
//! fingerprinting / model-extraction pipelines (paper Sec. V).

use gpubox_attacks::side::{
    detect_epochs, record_memorygram, summarize_mlp_gram, FingerprintDataset, RecorderConfig,
};
use gpubox_bench::{setup::victim_with_duration, SideChannelSetup};
use gpubox_classify::Memorygram;
use gpubox_sim::GpuId;
use gpubox_workloads::{standard_labels, standard_suite, MlpTraining, Workload};

fn capture(setup: &mut SideChannelSetup, w: &dyn Workload) -> Memorygram {
    let victim = setup.sys.create_process(GpuId::new(0));
    let (agent, duration) = victim_with_duration(&mut setup.sys, victim, w);
    setup.sys.flush_l2(GpuId::new(0));
    record_memorygram(
        &mut setup.sys,
        setup.spy,
        &setup.monitored,
        setup.thresholds,
        &RecorderConfig {
            duration,
            sweep_gap: 0,
        },
        vec![Box::new(agent)],
    )
    .expect("capture")
}

#[test]
fn every_workload_is_visible_through_the_side_channel() {
    let mut setup = SideChannelSetup::prepare(600, 128);
    for w in standard_suite() {
        let gram = capture(&mut setup, w.as_ref());
        // Exclude the cold first sweep, then the victim must still show.
        let active: u64 = gram.misses_per_sweep().iter().skip(1).sum();
        assert!(
            active > 100,
            "{} nearly invisible: {active} misses",
            w.name()
        );
    }
}

#[test]
fn workload_footprints_differ_from_each_other() {
    // Coarse separability check without training a classifier: per-class
    // mean feature images should differ pairwise.
    let mut setup = SideChannelSetup::prepare(601, 128);
    let features: Vec<Vec<f32>> = standard_suite()
        .iter()
        .map(|w| {
            let g = capture(&mut setup, w.as_ref());
            gpubox_attacks::side::gram_features(&g)
        })
        .collect();
    for i in 0..features.len() {
        for j in (i + 1)..features.len() {
            let dist: f32 = features[i]
                .iter()
                .zip(&features[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            assert!(dist > 0.05, "workloads {i} and {j} look identical ({dist})");
        }
    }
}

#[test]
fn small_fingerprint_pipeline_classifies_well() {
    let mut setup = SideChannelSetup::prepare(602, 128);
    let mut ds = FingerprintDataset::new(standard_labels());
    for (label, w) in standard_suite().iter().enumerate() {
        for _ in 0..8 {
            ds.push(capture(&mut setup, w.as_ref()), label);
        }
    }
    let rep = ds.train_and_evaluate(0.5, 0.25, 3);
    assert!(rep.test_accuracy >= 0.9, "accuracy {}", rep.test_accuracy);
}

#[test]
fn mlp_misses_grow_with_hidden_width() {
    let mut setup = SideChannelSetup::prepare(603, 256);
    let mut prev = 0.0;
    for width in [64usize, 256] {
        let gram = capture(&mut setup, &MlpTraining::with_hidden(width));
        let avg = summarize_mlp_gram(&gram).avg_misses_per_set;
        assert!(avg > prev, "width {width}: {avg} not above {prev}");
        prev = avg;
    }
}

#[test]
fn epoch_counts_recovered_from_memorygrams() {
    let mut setup = SideChannelSetup::prepare(604, 128);
    for epochs in [1usize, 2] {
        let gram = capture(&mut setup, &MlpTraining::with_hidden_epochs(64, epochs));
        assert_eq!(detect_epochs(&gram, 9), epochs, "epochs={epochs}");
    }
}

#[test]
fn concurrent_victims_superimpose_in_the_memorygram() {
    // Two victims running together produce at least as much activity as
    // the busier one alone — the spy sees the union of footprints.
    let mut setup = SideChannelSetup::prepare(605, 128);
    let solo = {
        let g = capture(&mut setup, &gpubox_workloads::VectorAdd::new(16 * 1024));
        g.total_misses()
    };
    let both = {
        let v1 = setup.sys.create_process(GpuId::new(0));
        let v2 = setup.sys.create_process(GpuId::new(0));
        let (a1, d1) = victim_with_duration(
            &mut setup.sys,
            v1,
            &gpubox_workloads::VectorAdd::new(16 * 1024),
        );
        let (a2, d2) = victim_with_duration(
            &mut setup.sys,
            v2,
            &gpubox_workloads::Histogram::new(16 * 1024, 256),
        );
        setup.sys.flush_l2(GpuId::new(0));
        let gram = record_memorygram(
            &mut setup.sys,
            setup.spy,
            &setup.monitored,
            setup.thresholds,
            &RecorderConfig {
                duration: d1.max(d2),
                sweep_gap: 0,
            },
            vec![Box::new(a1), Box::new(a2)],
        )
        .unwrap();
        gram.total_misses()
    };
    assert!(both > solo, "superimposed activity {both} <= solo {solo}");
}
