//! End-to-end covert-channel integration: the full paper pipeline at
//! DGX-1 scale — timing RE → page classification → alignment →
//! transmission — across crate boundaries.

use gpubox_attacks::covert::{bits_from_bytes, bytes_from_bits};
use gpubox_attacks::{transmit, ChannelParams};
use gpubox_bench::AttackSetup;

#[test]
fn full_pipeline_transfers_text_across_gpus() {
    let mut setup = AttackSetup::prepare(90210);
    let pairs = setup.aligned_pairs(2);
    let message = b"integration test message";
    let report = transmit(
        &mut setup.sys,
        setup.trojan,
        setup.spy,
        &pairs,
        &bits_from_bytes(message),
        &ChannelParams::default(),
        setup.thresholds,
    )
    .expect("transmission");
    assert!(
        report.error_rate < 0.02,
        "error rate too high: {} ({} errors)",
        report.error_rate,
        report.bit_errors
    );
    // With <2% errors the text should still be largely intact; with 0 it
    // round-trips exactly.
    if report.bit_errors == 0 {
        assert_eq!(bytes_from_bits(&report.received), message);
    }
}

#[test]
fn bandwidth_scales_and_error_stays_bounded_at_four_sets() {
    // The paper's headline operating point: 4 parallel sets, ~1.3% error.
    let mut setup = AttackSetup::prepare(90211);
    let pairs = setup.aligned_pairs(4);
    let payload = bits_from_bytes(&[0xA5u8; 192]);
    let params = ChannelParams::default();
    let r4 = transmit(
        &mut setup.sys,
        setup.trojan,
        setup.spy,
        &pairs,
        &payload,
        &params,
        setup.thresholds,
    )
    .unwrap();
    let r1 = transmit(
        &mut setup.sys,
        setup.trojan,
        setup.spy,
        &pairs[..1],
        &payload,
        &params,
        setup.thresholds,
    )
    .unwrap();
    assert!(
        r4.bandwidth_bytes_per_sec > 3.0 * r1.bandwidth_bytes_per_sec,
        "4-set bandwidth {} should be ~4x 1-set {}",
        r4.bandwidth_bytes_per_sec,
        r1.bandwidth_bytes_per_sec
    );
    assert!(r4.error_rate < 0.05, "4-set error {}", r4.error_rate);
}

#[test]
fn channel_works_between_other_gpu_pairs() {
    // The attack is not specific to GPUs 0/1: any NVLink-adjacent pair
    // works (here: 2 and 6, cross-quad neighbours on the cube mesh).
    use gpubox_attacks::timing_re::measure_timing;
    use gpubox_attacks::{
        align_classes, classify_pages, paired_sets, AlignmentConfig, Locality, ScanConfig,
        SetPair,
    };
    use gpubox_sim::{GpuId, MultiGpuSystem, ProcessCtx, SystemConfig};

    let mut sys = MultiGpuSystem::new(SystemConfig::dgx1().with_seed(31337));
    let timing = measure_timing(&mut sys, GpuId::new(2), GpuId::new(6), 48).unwrap();
    let trojan = sys.create_process(GpuId::new(2));
    let spy = sys.create_process(GpuId::new(6));
    sys.enable_peer_access(spy, GpuId::new(2)).unwrap();
    let bytes = 16 * 1024 * 1024u64;
    let page = sys.config().page_size;
    let tclasses = {
        let mut ctx = ProcessCtx::new(&mut sys, trojan, 0);
        let b = ctx.malloc_on(GpuId::new(2), bytes).unwrap();
        classify_pages(
            &mut ctx,
            b,
            bytes,
            page,
            128,
            16,
            &timing.thresholds,
            Locality::Local,
            &ScanConfig::classify_default(),
        )
        .unwrap()
    };
    let sclasses = {
        let mut ctx = ProcessCtx::new(&mut sys, spy, 0);
        let b = ctx.malloc_on(GpuId::new(2), bytes).unwrap();
        classify_pages(
            &mut ctx,
            b,
            bytes,
            page,
            128,
            16,
            &timing.thresholds,
            Locality::Remote,
            &ScanConfig::classify_default(),
        )
        .unwrap()
    };
    let matches = align_classes(
        &mut sys,
        trojan,
        &tclasses,
        spy,
        &sclasses,
        16,
        &AlignmentConfig::default(),
    )
    .unwrap();
    let pairs: Vec<SetPair> = paired_sets(&tclasses, &sclasses, &matches, 1, 16)
        .into_iter()
        .map(|(t, s)| SetPair { trojan: t, spy: s })
        .collect();
    let report = transmit(
        &mut sys,
        trojan,
        spy,
        &pairs,
        &bits_from_bytes(b"gpu2 to gpu6"),
        &ChannelParams::default(),
        timing.thresholds,
    )
    .unwrap();
    assert!(report.error_rate < 0.02, "error {}", report.error_rate);
}

#[test]
fn deterministic_given_seed() {
    let run = |seed: u64| {
        let mut setup = AttackSetup::prepare(seed);
        let pairs = setup.aligned_pairs(1);
        transmit(
            &mut setup.sys,
            setup.trojan,
            setup.spy,
            &pairs,
            &bits_from_bytes(b"determinism"),
            &ChannelParams::default(),
            setup.thresholds,
        )
        .unwrap()
        .received
    };
    assert_eq!(run(5150), run(5150), "same seed must reproduce bit-exactly");
}
