//! Integration tests for the offline reverse-engineering phase at
//! DGX-1 scale (paper Sec. III, Table I, Fig. 4/5).

use gpubox_attacks::cache_re::{derive_cache_architecture, DetectedPolicy};
use gpubox_attacks::timing_re::measure_timing;
use gpubox_attacks::{sets_alias, validation_sweep, Locality};
use gpubox_bench::AttackSetup;
use gpubox_sim::{GpuId, MultiGpuSystem, ProcessCtx, SystemConfig};

#[test]
fn timing_clusters_recovered_between_all_adjacent_pairs() {
    // Every directly connected pair shows the same four clusters.
    for (a, b) in [(0u8, 1u8), (4, 7), (3, 7)] {
        let mut sys = MultiGpuSystem::new(SystemConfig::dgx1().with_seed(u64::from(a) * 100));
        let rep = measure_timing(&mut sys, GpuId::new(a), GpuId::new(b), 48).unwrap();
        let expect = [270.0, 450.0, 630.0, 950.0];
        for (c, e) in rep.centers.iter().zip(expect) {
            assert!((c - e).abs() < 40.0, "pair ({a},{b}): centre {c} vs {e}");
        }
    }
}

#[test]
fn table1_derivation_at_dgx_scale() {
    let mut setup = AttackSetup::prepare(424242);
    let thr = setup.thresholds;
    let class0 = &setup.trojan_classes.classes[0];
    let base = setup.trojan_classes.base;
    let page = setup.trojan_classes.page_size;
    let conflicts: Vec<_> = class0[..20]
        .iter()
        .map(|&p| base.offset(p * page))
        .collect();
    let target = base.offset(class0[20] * page);
    let mut ctx = ProcessCtx::new(&mut setup.sys, setup.trojan, 0);
    let fresh = ctx.malloc_on(GpuId::new(0), 1024 * 1024).unwrap();
    let rep = derive_cache_architecture(
        &mut ctx,
        fresh,
        target,
        &conflicts,
        4 * 1024 * 1024,
        &thr,
        Locality::Local,
    )
    .unwrap();
    assert_eq!(rep.line_size, 128);
    assert_eq!(rep.ways, 16);
    assert_eq!(rep.num_sets, 2048);
    assert_eq!(rep.replacement, DetectedPolicy::Lru);
}

#[test]
fn page_classes_partition_the_buffer_and_cover_the_cache() {
    let setup = AttackSetup::prepare(555);
    let classes = &setup.trojan_classes;
    // 64 KiB pages, 2048 sets, 128 B lines: 512 lines/page -> 4 classes.
    assert_eq!(classes.lines_per_page(), 512);
    assert_eq!(classes.classes.len(), 4, "expected 4 alignment classes");
    let total: usize = classes.classes.iter().map(Vec::len).sum();
    assert_eq!(total as u64, gpubox_bench::ATTACK_BUFFER_BYTES / 65536);
    assert_eq!(
        classes.distinct_sets(),
        2048,
        "buffer reaches the whole cache"
    );
}

#[test]
fn remote_validation_sweep_steps_at_16() {
    let mut setup = AttackSetup::prepare(556);
    let thr = setup.thresholds;
    let classes = setup.spy_classes.clone();
    let class0 = &classes.classes[0];
    let conflicts: Vec<_> = class0[..24]
        .iter()
        .map(|&p| classes.base.offset(p * classes.page_size))
        .collect();
    let target = classes.base.offset(class0[24] * classes.page_size);
    let mut ctx = ProcessCtx::new(&mut setup.sys, setup.spy, 0);
    let sweep = validation_sweep(&mut ctx, target, &conflicts, 24).unwrap();
    for (n, t) in sweep {
        assert_eq!(
            thr.is_remote_miss(t),
            n >= 16,
            "remote sweep wrong at n={n} ({t} cycles)"
        );
    }
}

#[test]
fn aliasing_detected_between_duplicate_sets() {
    let mut setup = AttackSetup::prepare(557);
    let thr = setup.thresholds;
    let classes = setup.trojan_classes.clone();
    let pages = &classes.classes[0];
    assert!(pages.len() >= 32);
    let a = classes.eviction_set(0, 7, 16);
    // Same (class, offset) from different pages -> same physical set.
    let dup = gpubox_attacks::EvictionSet::new(
        pages[16..32]
            .iter()
            .map(|&p| classes.base.offset(p * classes.page_size + 7 * 128))
            .collect(),
    );
    let distinct = classes.eviction_set(0, 8, 16);
    let mut ctx = ProcessCtx::new(&mut setup.sys, setup.trojan, 0);
    assert!(sets_alias(&mut ctx, &a, &dup, 16, &thr, Locality::Local).unwrap());
    assert!(!sets_alias(&mut ctx, &a, &distinct, 16, &thr, Locality::Local).unwrap());
}

#[test]
fn eviction_sets_survive_reruns_with_same_allocation() {
    // Paper: "derived eviction sets remain valid over application runs as
    // long as the memory allocation size of the process remains
    // unchanged" — in the simulator, allocations persist per process, so
    // repeated probing of a discovered set stays consistent.
    let mut setup = AttackSetup::prepare(558);
    let thr = setup.thresholds;
    let es = setup.trojan_classes.eviction_set(1, 3, 16);
    for _ in 0..5 {
        let mut ctx = ProcessCtx::new(&mut setup.sys, setup.trojan, 0);
        es.prime(&mut ctx).unwrap();
        let probe = es.probe(&mut ctx, &thr, Locality::Local).unwrap();
        assert_eq!(probe.misses, 0, "freshly primed set must hit");
    }
}
