//! Umbrella crate for the GPU-box reproduction workspace.
//!
//! Hosts the repository-level integration tests (`tests/`) and runnable
//! examples (`examples/`); the substance lives in the member crates:
//!
//! - [`gpubox_sim`] — the multi-GPU DGX-1 simulator.
//! - [`gpubox_attacks`] — covert/side channel attack implementations.
//! - [`gpubox_workloads`] — victim workloads (MLP training, kernels).
//! - [`gpubox_classify`] — memorygram classifiers.
//! - [`gpubox_bench`] — experiment binaries and shared setup.

pub use gpubox_attacks as attacks;
pub use gpubox_bench as bench;
pub use gpubox_classify as classify;
pub use gpubox_sim as sim;
pub use gpubox_workloads as workloads;
